#ifndef BREP_BBTREE_DISK_BBTREE_H_
#define BREP_BBTREE_DISK_BBTREE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "bbtree/bbtree.h"
#include "common/rng.h"
#include "common/top_k.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/point_store.h"

namespace brep {

/// Serializable description of a disk tree's pages: enough to re-attach to
/// an already-written tree with zero writes (see the attach constructor).
///
/// `pages` is a slot table: slot i backs logical bytes [i*P, (i+1)*P) of the
/// tree's address space; kInvalidPageId marks a slot whose page was returned
/// to the pager (mutation chunks freed by Delete). `chunk_offsets[i]` /
/// `chunk_slots[i]` list the page-aligned allocations created by the
/// mutation path (the bulk-built packed region occupies the first
/// ceil(blob_size / P) slots and is not a chunk).
struct DiskBBTreeLayout {
  std::vector<PageId> pages;
  uint64_t blob_size = 0;
  uint64_t num_nodes = 0;
  uint64_t root_offset = 0;
  int32_t bound_iters = 0;
  uint64_t max_leaf_size = 0;
  int32_t kmeans_iters = 0;
  uint64_t insert_seed = 0;
  uint64_t num_points = 0;
  std::vector<uint64_t> chunk_offsets;
  std::vector<uint32_t> chunk_slots;
};

/// Disk-resident BB-tree: the node structure of an in-memory BBTree
/// serialized onto the simulated disk (paper Section 6's extension of
/// BB-trees to disks).
///
/// Interior and leaf nodes store the cluster center, radius, the per-node
/// distance statistics, and either child offsets or the point ids of the
/// cluster. Traversal reads node bytes through an LRU buffer pool (hot upper
/// levels stay cached, like an OS page cache would); point payloads are
/// fetched from the PointStore and charged against the pager directly.
///
/// All search methods are const and re-entrant: node reads go through the
/// pool's pinned-page API, so any number of threads (the query engine's
/// per-subspace filter tasks, or whole queries of a batch) may search one
/// tree concurrently.
///
/// The tree is also mutable -- Insert/Delete mirror the in-memory BBTree's
/// incremental-maintenance semantics but operate directly on pages:
///
///  * Insert descends to the closer child, widening every ball header in
///    place, and rewrites the target leaf. A leaf that outgrows its byte
///    allocation relocates into a fresh page-aligned chunk (pages served
///    from the pager's free-list first); an overflowing leaf is split by
///    Bregman 2-means exactly like the in-memory tree.
///  * Delete locates the leaf by ball-pruned descent, shrinks it in place,
///    and collapses an emptied leaf into its sibling, returning chunk pages
///    to the pager's free-list. Deleting the last point leaves a valid
///    empty tree (root_offset() == kNoNode) that accepts new inserts.
///
/// Mutations are single-writer and run on the writer's tree instance under
/// the serving layer's writer mutex; searches run against read-only
/// SnapshotClone()s bound to a pinned MVCC PageSnapshot (or against the
/// writer instance on single-threaded paths), so they never observe a
/// mutation in progress.
class DiskBBTree {
 public:
  /// root_offset() value of a tree holding no points.
  static constexpr uint64_t kNoNode = UINT64_MAX;

  /// Serialize `tree` into pages of `pager`. The tree object itself may be
  /// discarded afterwards; `pool_pages` bounds the node cache.
  /// `header_child_bounds` selects the descent I/O fix (see KnnSearch): the
  /// legacy full-read mode exists only so the regression test can measure
  /// the fix against the old behaviour.
  DiskBBTree(Pager* pager, const BBTree& tree, size_t pool_pages = 128,
             bool header_child_bounds = true);

  /// Re-attach to a tree previously serialized on `pager` (described by
  /// `layout()` of the original). Performs no pager writes.
  DiskBBTree(Pager* pager, BregmanDivergence div,
             const DiskBBTreeLayout& layout, size_t pool_pages = 128);

  /// The page placement to persist for a later re-attach.
  DiskBBTreeLayout layout() const;

  DiskBBTree(const DiskBBTree&) = delete;
  DiskBBTree& operator=(const DiskBBTree&) = delete;

  size_t dim() const { return div_.dim(); }
  const BregmanDivergence& divergence() const { return div_; }
  size_t num_nodes() const { return num_nodes_; }
  /// Points currently indexed.
  size_t num_points() const { return num_points_; }
  bool empty() const { return root_offset_ == kNoNode; }
  /// Total bytes of serialized index (for construction-cost reporting):
  /// the bulk-built region plus every mutation chunk's pages.
  size_t index_bytes() const;
  /// Full node materializations (payload/child-offset deserializations)
  /// since construction. Counted inside the read path itself -- not in the
  /// search algorithms -- so the descent I/O regression test measures what
  /// actually happened, whatever the traversal code claims.
  uint64_t full_node_reads() const {
    return full_node_reads_->load(std::memory_order_relaxed);
  }
  /// This tree's node cache (hit/miss/eviction counters for metrics; the
  /// pool itself is thread-safe and shared with every snapshot clone).
  const BufferPool& pool() const { return *pool_; }

  /// Read-only clone bound to an MVCC snapshot: copies the page table and
  /// tree geometry, shares the buffer pool and the full-node-read counter,
  /// and reads pages through `src` (which must outlive the clone). Serves
  /// every const search method; mutating calls on a clone abort.
  std::unique_ptr<DiskBBTree> SnapshotClone(const PageSource* src) const;

  /// Insert point `id` with subspace vector `x` (this tree's
  /// dimensionality). Must not race with searches.
  void Insert(uint32_t id, std::span<const double> x);

  /// Remove point `id`, whose stored subspace vector must be exactly `x`
  /// (the ball-pruned descent relies on it). Returns false when the id is
  /// not in the tree. Must not race with searches.
  bool Delete(uint32_t id, std::span<const double> x);

  /// Structural self-check: every ball contains its subtree's points,
  /// subtree counts add up, leaf occupancy respects max_leaf_size (unless
  /// the leaf's points are identical), node records stay inside their
  /// allocations and never overlap, and the chunk/free-slot tables
  /// partition the page table. Aborts with a message on violation.
  /// Compiled always; tests call it after every update batch and after
  /// reopening a persisted index.
  void DebugCheckInvariants() const;

  /// Pages currently referenced (for partition-level page accounting).
  std::vector<PageId> LivePages() const;

  /// Cluster-granularity range filter, as in BBTree::RangeCandidates, with
  /// node reads charged to the pager (via the pool).
  std::vector<uint32_t> RangeCandidates(std::span<const double> y,
                                        double radius,
                                        SearchStats* stats = nullptr) const;

  /// Exact range search (Cayton NIPS'09, the algorithm the paper adopts for
  /// the filter step): leaves store the subspace vectors, so qualifying
  /// points are identified on the index pages without touching the point
  /// store. Returns exactly {x : D(x_sub, y) <= radius}.
  std::vector<uint32_t> RangeSearchExact(std::span<const double> y,
                                         double radius,
                                         SearchStats* stats = nullptr) const;

  /// Exact branch-and-bound kNN ("BBT" baseline): node pruning uses this
  /// tree's balls, candidate points are fetched from `store` (which must
  /// have this tree's dimensionality) and evaluated with the tree's own
  /// divergence.
  ///
  /// Child lower bounds during the descent are computed from header-only
  /// node reads (the fixed-size prefix holding the ball), so a child's
  /// payload -- count*(4 + 8*dim) bytes for a leaf -- is deserialized once,
  /// when the node is popped from the frontier, not twice. SearchStats::
  /// nodes_visited counts full node materializations.
  std::vector<Neighbor> KnnSearch(std::span<const double> y, size_t k,
                                  const PointStore& store,
                                  SearchStats* stats = nullptr) const;

  /// "Var"-style approximate kNN (Coviello et al., ICML'13 behavioural
  /// reimplementation): identical traversal, but a node is explored only if
  /// the Gaussian model of its distance distribution predicts at least
  /// `min_expected_hits` points improving on the current k-th distance.
  std::vector<Neighbor> KnnSearchVariational(std::span<const double> y,
                                             size_t k,
                                             const PointStore& store,
                                             double min_expected_hits,
                                             SearchStats* stats = nullptr) const;

 private:
  struct DiskNode {
    BregmanBall ball;
    double dist_mean = 0.0;
    double dist_std = 0.0;
    uint32_t count = 0;
    bool is_leaf = false;
    uint64_t left_off = 0;
    uint64_t right_off = 0;
    std::vector<uint32_t> ids;
    /// Leaf only: the subspace vectors of `ids`, column-major / SoA
    /// (points[j * ids.size() + i] is coordinate j of point i) in memory
    /// AND on disk, so leaf scans stream each dimension unit-stride into
    /// the batched divergence kernel.
    std::vector<double> points;
  };

  /// One ancestor on the Delete descent path.
  struct PathFrame {
    uint64_t off;
    uint32_t count;
    bool from_left;  // which child pointer of the parent leads here
  };

  size_t NodeFixedBytes() const {
    return 1 + 4 + 3 * sizeof(double) + div_.dim() * sizeof(double);
  }
  size_t LeafRecordBytes(size_t count) const {
    return NodeFixedBytes() + count * (4 + div_.dim() * sizeof(double));
  }
  size_t InteriorRecordBytes() const { return NodeFixedBytes() + 16; }

  DiskNode ReadNode(uint64_t offset) const;
  /// Header-only read: the fixed-size prefix (flags, count, radius,
  /// distance stats, center) -- everything a ball lower bound needs,
  /// without the leaf payload or child offsets.
  DiskNode ReadNodeHeader(uint64_t offset) const;
  /// Complete a header-read node in place: fetch the leaf payload or the
  /// child offsets. Counts one full node materialization.
  void ReadNodeTail(uint64_t offset, DiskNode* node) const;
  /// Page-spanning byte fetch through the pool, bounds-checked against the
  /// page table.
  void ReadBytes(uint64_t start, size_t len, uint8_t* out) const;
  /// Page-spanning byte store (read-modify-write through the pager, never
  /// the pool); invalidates the pool entry of every touched page.
  void WriteBytes(uint64_t start, std::span<const uint8_t> bytes);
  template <typename T>
  void WriteField(uint64_t off, T v);

  std::vector<uint8_t> EncodeLeaf(const DiskNode& node) const;
  std::vector<uint8_t> EncodeInterior(const DiskNode& node) const;

  /// Allocate a run of page slots covering `bytes` (free slot runs first,
  /// fresh pager pages -- themselves free-list-served -- otherwise) and
  /// register it as a chunk. Returns its page-aligned offset.
  uint64_t AllocChunk(size_t bytes);
  /// Return a chunk's pages to the pager and its slots to the free runs.
  void FreeChunkAt(uint64_t off);
  /// Byte capacity of the allocation holding the node at `off`: the chunk
  /// extent for chunk nodes, 0 (caller falls back to the old record size)
  /// for nodes in the bulk-built packed region.
  size_t AllocCapacity(uint64_t off) const;

  /// Write `bytes` over the node at `off`, relocating into a fresh chunk
  /// (and repointing the parent / root) when they outgrow `old_bytes` and
  /// the node's allocation. Returns the node's (possibly new) offset.
  uint64_t ReplaceNode(uint64_t off, uint64_t parent_off, bool from_left,
                       size_t old_bytes, std::span<const uint8_t> bytes);

  /// Split `local` (row indices into `pts`) in two, mirroring the
  /// in-memory tree: Bregman 2-means first; when that degenerates (one
  /// side empty) fall back to a deterministic median split by divergence
  /// to `center`, so a leaf of non-identical points always splits.
  void SplitLocal(const Matrix& pts, std::span<const uint32_t> local,
                  std::span<const double> center, Rng& rng,
                  std::vector<uint32_t>* left,
                  std::vector<uint32_t>* right) const;

  /// Serialize a freshly built subtree over `local` rows of `pts` (global
  /// ids `global_ids[local[i]]`), mirroring BBTree::Build. Returns the
  /// subtree root's offset.
  uint64_t WriteSubtree(const Matrix& pts,
                        std::span<const uint32_t> global_ids,
                        std::span<const uint32_t> local, Rng& rng);

  void InsertIntoLeaf(uint64_t off, uint64_t parent_off, bool from_left,
                      DiskNode leaf, double widened_radius, uint32_t id,
                      std::span<const double> x);

  /// Ball (center = mean, radius = max divergence), distance statistics
  /// and count of `local` rows of `pts` -- the shared geometry of freshly
  /// built and merged leaves.
  void ComputeBallAndStats(const Matrix& pts,
                           std::span<const uint32_t> local,
                           DiskNode* node) const;

  /// Underflow handling on Delete: when the shrunk leaf and its sibling
  /// (also a leaf) together fit in three quarters of a leaf, replace
  /// their parent by one merged leaf with freshly computed exact
  /// geometry, returning both old records' chunk pages. Keeps the leaf
  /// count -- and with it the disk footprint -- bounded under
  /// insert/delete churn. Returns whether the merge happened (`path` then
  /// shrinks by the leaf level).
  bool TryMergeWithSibling(const DiskNode& leaf,
                           const std::vector<PathFrame>& path);

  bool FindLeafPath(uint64_t off, bool from_left, std::span<const double> x,
                    uint32_t id, std::vector<PathFrame>* path) const;

  /// DebugCheckInvariants recursion; returns the subtree's point count and
  /// accumulates node count and record extents.
  uint32_t CheckSubtree(uint64_t off,
                        std::vector<const DiskNode*>* ancestors,
                        uint64_t* nodes,
                        std::vector<std::pair<uint64_t, uint64_t>>* extents)
      const;

  template <typename Gate>
  std::vector<Neighbor> KnnImpl(std::span<const double> y, size_t k,
                                const PointStore& store, SearchStats* stats,
                                const Gate& gate) const;

  /// Snapshot-clone constructor (see SnapshotClone).
  DiskBBTree(const DiskBBTree& writer, const PageSource* src);

  Pager* pager_;           // null in snapshot clones (read-only)
  const PageSource* src_;  // where node reads fetch pages from
  size_t page_size_;
  BregmanDivergence div_;
  int bound_iters_;
  bool header_child_bounds_ = true;
  size_t max_leaf_size_ = 64;
  int kmeans_iters_ = 10;
  uint64_t insert_seed_ = 0;
  uint64_t num_points_ = 0;
  /// Shared with snapshot clones, so the descent-I/O metric aggregates
  /// across every reader of this tree.
  std::shared_ptr<std::atomic<uint64_t>> full_node_reads_;
  std::vector<PageId> pages_;
  size_t blob_size_ = 0;
  size_t num_nodes_ = 0;
  uint64_t root_offset_ = 0;
  /// Page-aligned mutation allocations: offset -> slots. Writer-only
  /// (empty in clones).
  std::map<uint64_t, uint32_t> chunk_map_;
  /// Reusable slot runs (pages already returned to the pager): start -> len.
  /// Writer-only (empty in clones).
  std::map<size_t, size_t> free_runs_;
  /// Shared with snapshot clones: generation-keyed entries keep versions
  /// from aliasing (see BufferPool).
  std::shared_ptr<BufferPool> pool_;
};

}  // namespace brep

#endif  // BREP_BBTREE_DISK_BBTREE_H_
