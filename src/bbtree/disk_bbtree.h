#ifndef BREP_BBTREE_DISK_BBTREE_H_
#define BREP_BBTREE_DISK_BBTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bbtree/bbtree.h"
#include "common/top_k.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "storage/point_store.h"

namespace brep {

/// Serializable description of a disk tree's pages: enough to re-attach to
/// an already-written tree with zero writes (see the attach constructor).
struct DiskBBTreeLayout {
  std::vector<PageId> pages;
  uint64_t blob_size = 0;
  uint64_t num_nodes = 0;
  uint64_t root_offset = 0;
  int32_t bound_iters = 0;
};

/// Disk-resident BB-tree: the node structure of an in-memory BBTree
/// serialized onto the simulated disk (paper Section 6's extension of
/// BB-trees to disks).
///
/// Interior and leaf nodes store the cluster center, radius, the per-node
/// distance statistics, and either child offsets or the point ids of the
/// cluster. Traversal reads node bytes through an LRU buffer pool (hot upper
/// levels stay cached, like an OS page cache would); point payloads are
/// fetched from the PointStore and charged against the pager directly.
///
/// All search methods are const and re-entrant: node reads go through the
/// pool's pinned-page API, so any number of threads (the query engine's
/// per-subspace filter tasks, or whole queries of a batch) may search one
/// tree concurrently.
class DiskBBTree {
 public:
  /// Serialize `tree` into pages of `pager`. The tree object itself may be
  /// discarded afterwards; `pool_pages` bounds the node cache.
  /// `header_child_bounds` selects the descent I/O fix (see KnnSearch): the
  /// legacy full-read mode exists only so the regression test can measure
  /// the fix against the old behaviour.
  DiskBBTree(Pager* pager, const BBTree& tree, size_t pool_pages = 128,
             bool header_child_bounds = true);

  /// Re-attach to a tree previously serialized on `pager` (described by
  /// `layout()` of the original). Performs no pager writes.
  DiskBBTree(Pager* pager, BregmanDivergence div,
             const DiskBBTreeLayout& layout, size_t pool_pages = 128);

  /// The page placement to persist for a later re-attach.
  DiskBBTreeLayout layout() const;

  DiskBBTree(const DiskBBTree&) = delete;
  DiskBBTree& operator=(const DiskBBTree&) = delete;

  size_t dim() const { return div_.dim(); }
  const BregmanDivergence& divergence() const { return div_; }
  size_t num_nodes() const { return num_nodes_; }
  /// Total bytes of serialized index (for construction-cost reporting).
  size_t index_bytes() const { return blob_size_; }
  /// Full node materializations (payload/child-offset deserializations)
  /// since construction. Counted inside the read path itself -- not in the
  /// search algorithms -- so the descent I/O regression test measures what
  /// actually happened, whatever the traversal code claims.
  uint64_t full_node_reads() const {
    return full_node_reads_.load(std::memory_order_relaxed);
  }

  /// Cluster-granularity range filter, as in BBTree::RangeCandidates, with
  /// node reads charged to the pager (via the pool).
  std::vector<uint32_t> RangeCandidates(std::span<const double> y,
                                        double radius,
                                        SearchStats* stats = nullptr) const;

  /// Exact range search (Cayton NIPS'09, the algorithm the paper adopts for
  /// the filter step): leaves store the subspace vectors, so qualifying
  /// points are identified on the index pages without touching the point
  /// store. Returns exactly {x : D(x_sub, y) <= radius}.
  std::vector<uint32_t> RangeSearchExact(std::span<const double> y,
                                         double radius,
                                         SearchStats* stats = nullptr) const;

  /// Exact branch-and-bound kNN ("BBT" baseline): node pruning uses this
  /// tree's balls, candidate points are fetched from `store` (which must
  /// have this tree's dimensionality) and evaluated with the tree's own
  /// divergence.
  ///
  /// Child lower bounds during the descent are computed from header-only
  /// node reads (the fixed-size prefix holding the ball), so a child's
  /// payload -- count*(4 + 8*dim) bytes for a leaf -- is deserialized once,
  /// when the node is popped from the frontier, not twice. SearchStats::
  /// nodes_visited counts full node materializations.
  std::vector<Neighbor> KnnSearch(std::span<const double> y, size_t k,
                                  const PointStore& store,
                                  SearchStats* stats = nullptr) const;

  /// "Var"-style approximate kNN (Coviello et al., ICML'13 behavioural
  /// reimplementation): identical traversal, but a node is explored only if
  /// the Gaussian model of its distance distribution predicts at least
  /// `min_expected_hits` points improving on the current k-th distance.
  std::vector<Neighbor> KnnSearchVariational(std::span<const double> y,
                                             size_t k,
                                             const PointStore& store,
                                             double min_expected_hits,
                                             SearchStats* stats = nullptr) const;

 private:
  struct DiskNode {
    BregmanBall ball;
    double dist_mean = 0.0;
    double dist_std = 0.0;
    uint32_t count = 0;
    bool is_leaf = false;
    uint64_t left_off = 0;
    uint64_t right_off = 0;
    std::vector<uint32_t> ids;
    /// Leaf only: the subspace vectors of `ids`, row-major (ids.size() x dim).
    std::vector<double> points;
  };

  DiskNode ReadNode(uint64_t offset) const;
  /// Header-only read: the fixed-size prefix (flags, count, radius,
  /// distance stats, center) -- everything a ball lower bound needs,
  /// without the leaf payload or child offsets.
  DiskNode ReadNodeHeader(uint64_t offset) const;
  /// Complete a header-read node in place: fetch the leaf payload or the
  /// child offsets. Counts one full node materialization.
  void ReadNodeTail(uint64_t offset, DiskNode* node) const;
  /// Page-spanning byte fetch through the pool, bounds-checked against the
  /// serialized blob.
  void ReadBytes(uint64_t start, size_t len, uint8_t* out) const;
  template <typename Gate>
  std::vector<Neighbor> KnnImpl(std::span<const double> y, size_t k,
                                const PointStore& store, SearchStats* stats,
                                const Gate& gate) const;

  Pager* pager_;
  BregmanDivergence div_;
  int bound_iters_;
  bool header_child_bounds_ = true;
  mutable std::atomic<uint64_t> full_node_reads_{0};
  std::vector<PageId> pages_;
  size_t blob_size_ = 0;
  size_t num_nodes_ = 0;
  uint64_t root_offset_ = 0;
  mutable BufferPool pool_;
};

}  // namespace brep

#endif  // BREP_BBTREE_DISK_BBTREE_H_
