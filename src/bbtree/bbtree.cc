#include "bbtree/bbtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "bbtree/kmeans.h"
#include "common/check.h"
#include "common/rng.h"
#include "divergence/kernels.h"

namespace brep {

BBTree::BBTree(const Matrix& data, const BregmanDivergence& div,
               const BBTreeConfig& config)
    : data_(&data), div_(div), config_(config) {
  BREP_CHECK(!data.empty());
  BREP_CHECK(data.cols() == div_.dim());
  std::vector<uint32_t> all(data.rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  Rng rng(config_.seed);
  root_ = Build(all, rng);
  size_ = data.rows();
  insert_seed_ = config_.seed ^ 0x5EEDF00DULL;
}

void BBTree::Insert(uint32_t id) {
  BREP_CHECK(id < data_->rows());
  const auto x = data_->Row(id);
  BREP_CHECK(div_.InDomain(x));

  if (root_ < 0) {
    // First point after a delete-to-empty: fresh single-leaf tree.
    Node node;
    node.ball.center.assign(x.begin(), x.end());
    node.ball.radius = 0.0;
    node.ids.push_back(id);
    nodes_.push_back(std::move(node));
    root_ = static_cast<int32_t>(nodes_.size() - 1);
    size_ = 1;
    return;
  }

  // Descend to the leaf whose center is nearest, widening balls on the way
  // so every ancestor still contains the new point.
  int32_t idx = root_;
  while (true) {
    Node& node = nodes_[idx];
    node.ball.radius =
        std::max(node.ball.radius, div_.Divergence(x, node.ball.center));
    if (node.is_leaf()) break;
    const double d_left =
        div_.Divergence(x, nodes_[node.left].ball.center);
    const double d_right =
        div_.Divergence(x, nodes_[node.right].ball.center);
    idx = d_left <= d_right ? node.left : node.right;
  }
  nodes_[idx].ids.push_back(id);
  ++size_;

  if (nodes_[idx].ids.size() <= config_.max_leaf_size ||
      nodes_[idx].ball.radius <= 0.0) {
    return;
  }
  // Overflow: split the leaf by Bregman 2-means, exactly like construction.
  Rng rng(insert_seed_++);
  const std::vector<uint32_t> ids = std::move(nodes_[idx].ids);
  nodes_[idx].ids.clear();
  KMeansResult split =
      BregmanKMeans(*data_, ids, div_, 2, rng, config_.kmeans_iters);
  std::vector<uint32_t> left_ids, right_ids;
  for (size_t i = 0; i < ids.size(); ++i) {
    (split.assignment[i] == 0 ? left_ids : right_ids).push_back(ids[i]);
  }
  if (left_ids.empty() || right_ids.empty()) {
    nodes_[idx].ids = ids;  // degenerate split: keep the oversized leaf
    return;
  }
  const int32_t left = Build(left_ids, rng);
  const int32_t right = Build(right_ids, rng);
  nodes_[idx].left = left;
  nodes_[idx].right = right;
}

bool BBTree::Delete(uint32_t id) {
  for (Node& node : nodes_) {
    if (!node.is_leaf()) continue;
    const auto it = std::find(node.ids.begin(), node.ids.end(), id);
    if (it != node.ids.end()) {
      node.ids.erase(it);
      --size_;
      // Balls are left as-is: still valid (possibly loose) covers. An empty
      // leaf stays in the tree; searches simply find nothing there.
      if (size_ == 0) {
        // Deleting the last point previously left the dead skeleton in
        // place: every later search (and every insert descent) still
        // walked all the stale nodes, and the first re-inserted point
        // inherited a ball centered on long-gone data. Reset to a truly
        // empty tree instead; Insert rebuilds from a fresh leaf.
        nodes_.clear();
        root_ = -1;
      }
      return true;
    }
  }
  return false;
}

int32_t BBTree::Build(std::span<const uint32_t> ids, Rng& rng) {
  Node node;
  node.ball.center = div_.Mean(*data_, ids);
  // Radius and per-node distance distribution (used by Var-style search).
  double sum = 0.0, sum_sq = 0.0;
  for (uint32_t id : ids) {
    const double d = div_.Divergence(data_->Row(id), node.ball.center);
    node.ball.radius = std::max(node.ball.radius, d);
    sum += d;
    sum_sq += d * d;
  }
  const double n = static_cast<double>(ids.size());
  node.dist_mean = sum / n;
  node.dist_std = std::sqrt(std::max(0.0, sum_sq / n - node.dist_mean * node.dist_mean));

  const bool must_leaf = ids.size() <= config_.max_leaf_size ||
                         node.ball.radius <= 0.0;  // all points identical
  if (!must_leaf) {
    KMeansResult split = BregmanKMeans(*data_, ids, div_, 2, rng,
                                       config_.kmeans_iters);
    std::vector<uint32_t> left_ids, right_ids;
    left_ids.reserve(ids.size());
    right_ids.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      (split.assignment[i] == 0 ? left_ids : right_ids).push_back(ids[i]);
    }
    if (!left_ids.empty() && !right_ids.empty()) {
      const int32_t left = Build(left_ids, rng);
      const int32_t right = Build(right_ids, rng);
      node.left = left;
      node.right = right;
      nodes_.push_back(std::move(node));
      return static_cast<int32_t>(nodes_.size() - 1);
    }
    // Degenerate split: fall through to a leaf.
  }
  node.ids.assign(ids.begin(), ids.end());
  nodes_.push_back(std::move(node));
  return static_cast<int32_t>(nodes_.size() - 1);
}

double BBTree::NodeLowerBound(const Node& node, std::span<const double> y,
                              std::span<const double> grad_y) const {
  return BallDistanceLowerBound(div_, node.ball, y, grad_y,
                                config_.bound_iters);
}

std::vector<Neighbor> BBTree::KnnSearch(std::span<const double> y, size_t k,
                                        SearchStats* stats) const {
  BREP_CHECK(y.size() == div_.dim());
  if (root_ < 0) return {};  // deleted down to empty
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  // Query-side scan context: phi(y)/phi'(y) cached once, leaves evaluated
  // through the batched kernel (byte-identical to per-point Divergence).
  const simd::DivergenceScan scan(div_, y);
  std::vector<double> leaf_d;
  leaf_d.reserve(config_.max_leaf_size);

  TopK topk(k);
  // Best-first branch and bound on (lower bound, node).
  using Entry = std::pair<double, int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.emplace(
      NodeLowerBound(nodes_[root_], y, grad_y), root_);

  while (!frontier.empty()) {
    const auto [lb, idx] = frontier.top();
    frontier.pop();
    if (lb >= topk.Threshold()) continue;  // cannot improve the k-th best
    const Node& node = nodes_[idx];
    ++st.nodes_visited;
    if (node.is_leaf()) {
      ++st.leaves_visited;
      leaf_d.resize(node.ids.size());
      scan.BatchRows(data_->data().data(), data_->cols(), node.ids.data(),
                     node.ids.size(), leaf_d.data());
      for (size_t i = 0; i < node.ids.size(); ++i) {
        topk.Push(leaf_d[i], node.ids[i]);
        ++st.points_evaluated;
      }
    } else {
      const double lb_left = NodeLowerBound(nodes_[node.left], y, grad_y);
      const double lb_right = NodeLowerBound(nodes_[node.right], y, grad_y);
      if (lb_left < topk.Threshold()) frontier.emplace(lb_left, node.left);
      if (lb_right < topk.Threshold()) frontier.emplace(lb_right, node.right);
    }
  }
  return topk.SortedResults();
}

std::vector<uint32_t> BBTree::RangeSearch(std::span<const double> y,
                                          double radius,
                                          SearchStats* stats) const {
  BREP_CHECK(y.size() == div_.dim());
  if (root_ < 0) return {};  // deleted down to empty
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  const simd::DivergenceScan scan(div_, y);
  std::vector<double> leaf_d;
  leaf_d.reserve(config_.max_leaf_size);

  std::vector<uint32_t> result;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[idx];
    ++st.nodes_visited;
    if (NodeLowerBound(node, y, grad_y) > radius) continue;
    if (node.is_leaf()) {
      ++st.leaves_visited;
      leaf_d.resize(node.ids.size());
      scan.BatchRows(data_->data().data(), data_->cols(), node.ids.data(),
                     node.ids.size(), leaf_d.data());
      for (size_t i = 0; i < node.ids.size(); ++i) {
        ++st.points_evaluated;
        if (leaf_d[i] <= radius) result.push_back(node.ids[i]);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return result;
}

std::vector<uint32_t> BBTree::RangeCandidates(std::span<const double> y,
                                              double radius,
                                              SearchStats* stats) const {
  BREP_CHECK(y.size() == div_.dim());
  if (root_ < 0) return {};  // deleted down to empty
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  std::vector<uint32_t> result;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[idx];
    ++st.nodes_visited;
    if (NodeLowerBound(node, y, grad_y) > radius) continue;
    if (node.is_leaf()) {
      ++st.leaves_visited;
      result.insert(result.end(), node.ids.begin(), node.ids.end());
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return result;
}

std::vector<uint32_t> BBTree::LeafOrder() const {
  if (root_ < 0) return {};
  std::vector<uint32_t> order;
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[idx];
    if (node.is_leaf()) {
      order.insert(order.end(), node.ids.begin(), node.ids.end());
    } else {
      // Push right first so the left subtree is emitted first.
      stack.push_back(node.right);
      stack.push_back(node.left);
    }
  }
  return order;
}

}  // namespace brep
