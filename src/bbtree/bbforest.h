#ifndef BREP_BBTREE_BBFOREST_H_
#define BREP_BBTREE_BBFOREST_H_

#include <memory>
#include <span>
#include <vector>

#include "bbtree/bbtree.h"
#include "bbtree/disk_bbtree.h"
#include "dataset/matrix.h"
#include "divergence/bregman.h"
#include "storage/pager.h"
#include "storage/point_store.h"

namespace brep {

/// Granularity of the per-subspace range filter.
enum class FilterMode {
  /// Exact range search on index pages (Cayton NIPS'09, the algorithm the
  /// paper adopts): only points whose subspace divergence is within the
  /// radius become candidates. Default.
  kExactRange,
  /// Whole-cluster loading as modelled in the paper's Section 5.1 cost
  /// analysis: every point of every leaf whose ball intersects the range
  /// becomes a candidate. Cheaper per node, many more candidates.
  kCluster,
};

/// Construction parameters for the BB-forest.
struct BBForestConfig {
  BBTreeConfig tree;
  /// Buffer-pool pages per disk tree (caches hot index nodes).
  size_t pool_pages = 128;
  FilterMode filter_mode = FilterMode::kExactRange;
};

/// The paper's integrated, disk-resident index (Section 6): one disk BB-tree
/// per partitioned subspace, all sharing a single point store.
///
/// Following the paper, the full-dimensional points are laid out on disk in
/// the leaf order of the tree of the *first* subspace; with PCCP the
/// subspaces cluster similarly, so the leaves of every other tree index
/// mostly-contiguous page ranges and the refinement step touches few
/// distinct pages.
class BBForest {
 public:
  /// Build over `data` (n x d) with full-space divergence `div`.
  /// `partitions[m]` lists the original column indices of subspace m.
  BBForest(Pager* pager, const Matrix& data, const BregmanDivergence& div,
           std::vector<std::vector<size_t>> partitions,
           const BBForestConfig& config);

  /// Re-attach to a forest previously written on `pager`: the point-store
  /// placement and the per-tree page lists come from a saved catalog, so no
  /// clustering, serialization or pager write happens here (the open path
  /// of a persistent index).
  BBForest(Pager* pager, const BregmanDivergence& div,
           std::vector<std::vector<size_t>> partitions, FilterMode filter_mode,
           size_t pool_pages, const PointStoreLayout& store_layout,
           std::span<const DiskBBTreeLayout> tree_layouts);

  BBForest(const BBForest&) = delete;
  BBForest& operator=(const BBForest&) = delete;

  /// Read-only clone bound to an MVCC snapshot: the store and every tree are
  /// snapshot-cloned to read through `src` (which must outlive the clone),
  /// sharing the writer's buffer pools and COW tables. Cheap -- no pager
  /// I/O. Clones serve the whole search path (RangeCandidatesUnion, tree
  /// searches, point fetches); mutating calls on a clone abort.
  std::unique_ptr<BBForest> SnapshotClone(const PageSource* src) const;

  size_t num_partitions() const { return partitions_.size(); }
  size_t num_points() const { return store_->num_points(); }

  /// Route a full-dimensional point into the store and every subspace
  /// tree. `id` must be fresh or tombstoned in the store. Must not race
  /// with searches (the serving layer holds an exclusive lock).
  void Insert(uint32_t id, std::span<const double> x);

  /// Remove a point from the store and every subspace tree; false when the
  /// id is not stored. Must not race with searches.
  bool Delete(uint32_t id);

  /// Whether `id` is currently indexed.
  bool Contains(uint32_t id) const { return store_->Contains(id); }

  /// Store + per-tree structural self-checks (see the members' docs) plus
  /// store/tree point-count agreement. Aborts with a message on violation.
  void DebugCheckInvariants() const;

  /// Pages referenced by the store and every tree (partition-level page
  /// accounting; catalog pages are the caller's).
  std::vector<PageId> LivePages() const;
  const std::vector<size_t>& partition_columns(size_t m) const {
    return partitions_[m];
  }
  const DiskBBTree& tree(size_t m) const { return *trees_[m]; }
  const BregmanDivergence& subspace_divergence(size_t m) const {
    return trees_[m]->divergence();
  }
  const PointStore& point_store() const { return *store_; }

  /// Filter step: run the cluster-granularity range query in every subspace
  /// (query subvector `y_subs[m]`, radius `radii[m]`) and return the union
  /// of candidate ids (sorted, deduplicated). Theorem 3 guarantees the true
  /// kNN are inside when the radii are the components of the k-th smallest
  /// upper bound.
  std::vector<uint32_t> RangeCandidatesUnion(
      std::span<const std::vector<double>> y_subs,
      std::span<const double> radii, SearchStats* stats = nullptr) const;

  FilterMode filter_mode() const { return filter_mode_; }
  /// Buffer-pool pages per disk tree (persisted so Open restores the same
  /// caching behaviour).
  size_t pool_pages() const { return pool_pages_; }

  /// Buffer-pool traffic summed over every tree's node cache. Relaxed
  /// atomic reads: safe concurrently with serving, and two counters read
  /// while queries run may disagree by the in-flight operations.
  struct PoolCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t resident_pages = 0;
    size_t capacity_pages = 0;
  };
  PoolCounters pool_counters() const;

  /// Just the hit/miss counters (the per-query delta the instrumentation
  /// takes twice per query): purely relaxed atomic loads, no pool mutex.
  struct PoolTraffic {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  PoolTraffic pool_traffic() const;

 private:
  /// Snapshot-clone constructor (see SnapshotClone).
  BBForest(const BBForest& writer, const PageSource* src);

  FilterMode filter_mode_;
  size_t pool_pages_ = 128;
  std::vector<std::vector<size_t>> partitions_;
  std::unique_ptr<PointStore> store_;
  std::vector<std::unique_ptr<DiskBBTree>> trees_;
};

}  // namespace brep

#endif  // BREP_BBTREE_BBFOREST_H_
