#include "bbtree/disk_bbtree.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/math_utils.h"

namespace brep {
namespace {

void AppendBytes(std::vector<uint8_t>* blob, const void* src, size_t len) {
  const auto* p = static_cast<const uint8_t*>(src);
  blob->insert(blob->end(), p, p + len);
}

template <typename T>
void AppendValue(std::vector<uint8_t>* blob, T v) {
  AppendBytes(blob, &v, sizeof(T));
}

template <typename T>
T ReadValue(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

DiskBBTree::DiskBBTree(Pager* pager, const BBTree& tree, size_t pool_pages,
                       bool header_child_bounds)
    : pager_(pager),
      div_(tree.divergence()),
      bound_iters_(tree.config().bound_iters),
      header_child_bounds_(header_child_bounds),
      pool_(pager, pool_pages) {
  BREP_CHECK(pager_ != nullptr);
  const auto& nodes = tree.nodes();
  num_nodes_ = nodes.size();
  const size_t dim = div_.dim();
  const size_t fixed = 1 + 4 + 3 * sizeof(double) + dim * sizeof(double);

  // Subtree point counts (leaf ids roll up to interior nodes).
  std::vector<uint32_t> count(nodes.size(), 0);
  // nodes were appended children-before-parent during Build, so a forward
  // scan sees children first.
  for (size_t i = 0; i < nodes.size(); ++i) {
    count[i] = nodes[i].is_leaf()
                   ? static_cast<uint32_t>(nodes[i].ids.size())
                   : count[nodes[i].left] + count[nodes[i].right];
  }

  // Leaves carry their subspace vectors so exact range search runs on index
  // pages alone (Cayton'09 semantics).
  auto node_size = [&](const BBTree::Node& n) {
    return fixed +
           (n.is_leaf() ? (4 + dim * sizeof(double)) * n.ids.size() : 16);
  };

  // Pre-order offset assignment.
  std::vector<uint64_t> offset(nodes.size(), 0);
  uint64_t cursor = 0;
  std::vector<int32_t> stack{tree.root()};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    offset[idx] = cursor;
    cursor += node_size(nodes[idx]);
    if (!nodes[idx].is_leaf()) {
      stack.push_back(nodes[idx].right);
      stack.push_back(nodes[idx].left);
    }
  }
  root_offset_ = offset[tree.root()];
  BREP_CHECK(root_offset_ == 0);

  // Serialize in the same order.
  std::vector<uint8_t> blob;
  blob.reserve(cursor);
  stack.assign(1, tree.root());
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const BBTree::Node& n = nodes[idx];
    BREP_CHECK(blob.size() == offset[idx]);
    AppendValue<uint8_t>(&blob, n.is_leaf() ? 1 : 0);
    AppendValue<uint32_t>(&blob, count[idx]);
    AppendValue<double>(&blob, n.ball.radius);
    AppendValue<double>(&blob, n.dist_mean);
    AppendValue<double>(&blob, n.dist_std);
    AppendBytes(&blob, n.ball.center.data(), dim * sizeof(double));
    if (n.is_leaf()) {
      AppendBytes(&blob, n.ids.data(), 4 * n.ids.size());
      for (uint32_t id : n.ids) {
        AppendBytes(&blob, tree.data().Row(id).data(), dim * sizeof(double));
      }
    } else {
      AppendValue<uint64_t>(&blob, offset[n.left]);
      AppendValue<uint64_t>(&blob, offset[n.right]);
      stack.push_back(n.right);
      stack.push_back(n.left);
    }
  }
  blob_size_ = blob.size();
  pages_ = pager_->WriteBlob(blob);
}

DiskBBTree::DiskBBTree(Pager* pager, BregmanDivergence div,
                       const DiskBBTreeLayout& layout, size_t pool_pages)
    : pager_(pager),
      div_(std::move(div)),
      bound_iters_(layout.bound_iters),
      pages_(layout.pages),
      blob_size_(layout.blob_size),
      num_nodes_(layout.num_nodes),
      root_offset_(layout.root_offset),
      pool_(pager, pool_pages) {
  BREP_CHECK(pager_ != nullptr);
  BREP_CHECK(!pages_.empty());
  BREP_CHECK(blob_size_ <= pages_.size() * pager_->page_size());
  for (PageId id : pages_) BREP_CHECK(id < pager_->num_pages());
}

DiskBBTreeLayout DiskBBTree::layout() const {
  DiskBBTreeLayout layout;
  layout.pages = pages_;
  layout.blob_size = blob_size_;
  layout.num_nodes = num_nodes_;
  layout.root_offset = root_offset_;
  layout.bound_iters = bound_iters_;
  return layout;
}

void DiskBBTree::ReadBytes(uint64_t start, size_t len, uint8_t* out) const {
  // Node pages carry no checksum (the paper's I/O metric would be distorted
  // by verifying every page on every read), so offsets and counts decoded
  // from them are bounds-checked before they can index past the page list
  // or drive a huge allocation: a corrupted page aborts with a message
  // instead of undefined behaviour.
  BREP_CHECK_MSG(uint64_t{len} <= blob_size_ && start <= blob_size_ - len,
                 "corrupted tree page (node range out of bounds)");
  const size_t page_size = pager_->page_size();
  size_t done = 0;
  while (done < len) {
    const uint64_t pos = start + done;
    const size_t page_idx = pos / page_size;
    const size_t in_page = pos % page_size;
    const size_t chunk = std::min(len - done, page_size - in_page);
    const PagePin buf = pool_.ReadPinned(pages_[page_idx]);
    std::memcpy(out + done, buf->data() + in_page, chunk);
    done += chunk;
  }
}

DiskBBTree::DiskNode DiskBBTree::ReadNodeHeader(uint64_t off) const {
  const size_t dim = div_.dim();
  const size_t fixed = 1 + 4 + 3 * sizeof(double) + dim * sizeof(double);
  std::vector<uint8_t> head(fixed);
  ReadBytes(off, fixed, head.data());

  DiskNode node;
  size_t pos = 0;
  node.is_leaf = head[pos] != 0;
  pos += 1;
  node.count = ReadValue<uint32_t>(&head[pos]);
  pos += 4;
  node.ball.radius = ReadValue<double>(&head[pos]);
  pos += 8;
  node.dist_mean = ReadValue<double>(&head[pos]);
  pos += 8;
  node.dist_std = ReadValue<double>(&head[pos]);
  pos += 8;
  node.ball.center.resize(dim);
  std::memcpy(node.ball.center.data(), &head[pos], dim * sizeof(double));
  return node;
}

void DiskBBTree::ReadNodeTail(uint64_t off, DiskNode* node) const {
  const size_t dim = div_.dim();
  const size_t fixed = 1 + 4 + 3 * sizeof(double) + dim * sizeof(double);
  full_node_reads_.fetch_add(1, std::memory_order_relaxed);
  if (node->is_leaf) {
    const uint64_t tail_bytes =
        uint64_t{node->count} * (4 + dim * sizeof(double));
    BREP_CHECK_MSG(  // before any count-driven allocation
        tail_bytes <= blob_size_ && off + fixed <= blob_size_ - tail_bytes,
        "corrupted tree page (leaf payload out of bounds)");
    node->ids.resize(node->count);
    node->points.resize(size_t(node->count) * dim);
    std::vector<uint8_t> tail(static_cast<size_t>(tail_bytes));
    ReadBytes(off + fixed, tail.size(), tail.data());
    std::memcpy(node->ids.data(), tail.data(), 4 * node->count);
    std::memcpy(node->points.data(), tail.data() + 4 * node->count,
                node->points.size() * sizeof(double));
  } else {
    uint8_t tail[16];
    ReadBytes(off + fixed, 16, tail);
    node->left_off = ReadValue<uint64_t>(&tail[0]);
    node->right_off = ReadValue<uint64_t>(&tail[8]);
  }
}

DiskBBTree::DiskNode DiskBBTree::ReadNode(uint64_t off) const {
  DiskNode node = ReadNodeHeader(off);
  ReadNodeTail(off, &node);
  return node;
}

std::vector<uint32_t> DiskBBTree::RangeCandidates(std::span<const double> y,
                                                  double radius,
                                                  SearchStats* stats) const {
  BREP_CHECK(y.size() == div_.dim());
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  std::vector<uint32_t> result;
  std::vector<uint64_t> stack{root_offset_};
  while (!stack.empty()) {
    const uint64_t off = stack.back();
    stack.pop_back();
    // Header first: a pruned node never pays for its payload (same I/O fix
    // as the kNN descent); a surviving node continues with just the tail.
    DiskNode node = ReadNodeHeader(off);
    ++st.nodes_visited;
    if (BallDistanceLowerBound(div_, node.ball, y, grad_y, bound_iters_) >
        radius) {
      continue;
    }
    ReadNodeTail(off, &node);
    if (node.is_leaf) {
      ++st.leaves_visited;
      result.insert(result.end(), node.ids.begin(), node.ids.end());
    } else {
      stack.push_back(node.left_off);
      stack.push_back(node.right_off);
    }
  }
  return result;
}

std::vector<uint32_t> DiskBBTree::RangeSearchExact(std::span<const double> y,
                                                   double radius,
                                                   SearchStats* stats) const {
  BREP_CHECK(y.size() == div_.dim());
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  const size_t dim = div_.dim();
  std::vector<double> grad_y(dim);
  div_.Gradient(y, std::span<double>(grad_y));

  std::vector<uint32_t> result;
  std::vector<uint64_t> stack{root_offset_};
  while (!stack.empty()) {
    const uint64_t off = stack.back();
    stack.pop_back();
    DiskNode node = ReadNodeHeader(off);
    ++st.nodes_visited;
    if (BallDistanceLowerBound(div_, node.ball, y, grad_y, bound_iters_) >
        radius) {
      continue;
    }
    ReadNodeTail(off, &node);
    if (node.is_leaf) {
      ++st.leaves_visited;
      for (size_t i = 0; i < node.ids.size(); ++i) {
        ++st.points_evaluated;
        const std::span<const double> x(&node.points[i * dim], dim);
        if (div_.Divergence(x, y) <= radius) result.push_back(node.ids[i]);
      }
    } else {
      stack.push_back(node.left_off);
      stack.push_back(node.right_off);
    }
  }
  return result;
}

template <typename Gate>
std::vector<Neighbor> DiskBBTree::KnnImpl(std::span<const double> y, size_t k,
                                          const PointStore& store,
                                          SearchStats* stats,
                                          const Gate& gate) const {
  BREP_CHECK(y.size() == div_.dim());
  BREP_CHECK_MSG(store.dim() == div_.dim(),
                 "disk kNN evaluates in the tree's own space");
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  TopK topk(k);
  // In header-child-bounds mode the frontier carries each node's decoded
  // header (read once, at push time, to compute its bound), so a popped
  // node fetches only its tail -- no byte is read or decoded twice on the
  // descent. The legacy mode reproduces the old double-read behaviour for
  // the I/O regression test: full child reads at expansion (counted in
  // nodes_visited as the materializations they are) and a fresh full read
  // on pop.
  struct Entry {
    double lb;
    uint64_t off;
    DiskNode header;  // populated in header-child-bounds mode only
    bool operator>(const Entry& o) const { return lb > o.lb; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.push(Entry{0.0, root_offset_,
                      header_child_bounds_ ? ReadNodeHeader(root_offset_)
                                           : DiskNode{}});

  while (!frontier.empty()) {
    // Move rather than copy: the entry carries the node's center vector and
    // is discarded by the pop() on the next line, so stealing its buffers
    // is safe and keeps the pop allocation-free.
    Entry e = std::move(const_cast<Entry&>(frontier.top()));
    frontier.pop();
    if (e.lb >= topk.Threshold()) continue;
    DiskNode node;
    if (header_child_bounds_) {
      node = std::move(e.header);
      ReadNodeTail(e.off, &node);
    } else {
      node = ReadNode(e.off);
    }
    ++st.nodes_visited;
    if (!gate(e.lb, node, topk.Threshold())) continue;
    if (node.is_leaf) {
      ++st.leaves_visited;
      store.FetchMany(node.ids,
                      [&](uint32_t id, std::span<const double> x) {
                        topk.Push(div_.Divergence(x, y), id);
                        ++st.points_evaluated;
                      });
    } else {
      DiskNode left = header_child_bounds_ ? ReadNodeHeader(node.left_off)
                                           : ReadNode(node.left_off);
      DiskNode right = header_child_bounds_ ? ReadNodeHeader(node.right_off)
                                            : ReadNode(node.right_off);
      if (!header_child_bounds_) st.nodes_visited += 2;
      const double lb_l =
          BallDistanceLowerBound(div_, left.ball, y, grad_y, bound_iters_);
      const double lb_r =
          BallDistanceLowerBound(div_, right.ball, y, grad_y, bound_iters_);
      if (lb_l < topk.Threshold()) {
        frontier.push(Entry{lb_l, node.left_off,
                            header_child_bounds_ ? std::move(left)
                                                 : DiskNode{}});
      }
      if (lb_r < topk.Threshold()) {
        frontier.push(Entry{lb_r, node.right_off,
                            header_child_bounds_ ? std::move(right)
                                                 : DiskNode{}});
      }
    }
  }
  return topk.SortedResults();
}

std::vector<Neighbor> DiskBBTree::KnnSearch(std::span<const double> y,
                                            size_t k, const PointStore& store,
                                            SearchStats* stats) const {
  return KnnImpl(y, k, store, stats,
                 [](double, const DiskNode&, double) { return true; });
}

std::vector<Neighbor> DiskBBTree::KnnSearchVariational(
    std::span<const double> y, size_t k, const PointStore& store,
    double min_expected_hits, SearchStats* stats) const {
  auto gate = [min_expected_hits](double lb, const DiskNode& node,
                                  double threshold) {
    if (threshold == std::numeric_limits<double>::infinity()) return true;
    // Gaussian model of per-point distances within the node: centered at
    // lb + dist_mean with spread dist_std (data-distribution heuristic in
    // the spirit of Coviello et al.'s variational estimate).
    const double sigma = node.dist_std + 1e-12;
    const double z = (threshold - lb - node.dist_mean) / sigma;
    const double p_improve = NormalCdf(z);
    return static_cast<double>(node.count) * p_improve >= min_expected_hits;
  };
  return KnnImpl(y, k, store, stats, gate);
}

}  // namespace brep
