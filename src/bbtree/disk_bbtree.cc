#include "bbtree/disk_bbtree.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/math_utils.h"

namespace brep {
namespace {

void AppendBytes(std::vector<uint8_t>* blob, const void* src, size_t len) {
  const auto* p = static_cast<const uint8_t*>(src);
  blob->insert(blob->end(), p, p + len);
}

template <typename T>
void AppendValue(std::vector<uint8_t>* blob, T v) {
  AppendBytes(blob, &v, sizeof(T));
}

template <typename T>
T ReadValue(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

DiskBBTree::DiskBBTree(Pager* pager, const BBTree& tree, size_t pool_pages)
    : pager_(pager),
      div_(tree.divergence()),
      bound_iters_(tree.config().bound_iters),
      pool_(pager, pool_pages) {
  BREP_CHECK(pager_ != nullptr);
  const auto& nodes = tree.nodes();
  num_nodes_ = nodes.size();
  const size_t dim = div_.dim();
  const size_t fixed = 1 + 4 + 3 * sizeof(double) + dim * sizeof(double);

  // Subtree point counts (leaf ids roll up to interior nodes).
  std::vector<uint32_t> count(nodes.size(), 0);
  // nodes were appended children-before-parent during Build, so a forward
  // scan sees children first.
  for (size_t i = 0; i < nodes.size(); ++i) {
    count[i] = nodes[i].is_leaf()
                   ? static_cast<uint32_t>(nodes[i].ids.size())
                   : count[nodes[i].left] + count[nodes[i].right];
  }

  // Leaves carry their subspace vectors so exact range search runs on index
  // pages alone (Cayton'09 semantics).
  auto node_size = [&](const BBTree::Node& n) {
    return fixed +
           (n.is_leaf() ? (4 + dim * sizeof(double)) * n.ids.size() : 16);
  };

  // Pre-order offset assignment.
  std::vector<uint64_t> offset(nodes.size(), 0);
  uint64_t cursor = 0;
  std::vector<int32_t> stack{tree.root()};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    offset[idx] = cursor;
    cursor += node_size(nodes[idx]);
    if (!nodes[idx].is_leaf()) {
      stack.push_back(nodes[idx].right);
      stack.push_back(nodes[idx].left);
    }
  }
  root_offset_ = offset[tree.root()];
  BREP_CHECK(root_offset_ == 0);

  // Serialize in the same order.
  std::vector<uint8_t> blob;
  blob.reserve(cursor);
  stack.assign(1, tree.root());
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const BBTree::Node& n = nodes[idx];
    BREP_CHECK(blob.size() == offset[idx]);
    AppendValue<uint8_t>(&blob, n.is_leaf() ? 1 : 0);
    AppendValue<uint32_t>(&blob, count[idx]);
    AppendValue<double>(&blob, n.ball.radius);
    AppendValue<double>(&blob, n.dist_mean);
    AppendValue<double>(&blob, n.dist_std);
    AppendBytes(&blob, n.ball.center.data(), dim * sizeof(double));
    if (n.is_leaf()) {
      AppendBytes(&blob, n.ids.data(), 4 * n.ids.size());
      for (uint32_t id : n.ids) {
        AppendBytes(&blob, tree.data().Row(id).data(), dim * sizeof(double));
      }
    } else {
      AppendValue<uint64_t>(&blob, offset[n.left]);
      AppendValue<uint64_t>(&blob, offset[n.right]);
      stack.push_back(n.right);
      stack.push_back(n.left);
    }
  }
  blob_size_ = blob.size();
  pages_ = pager_->WriteBlob(blob);
}

DiskBBTree::DiskNode DiskBBTree::ReadNode(uint64_t off) const {
  const size_t page_size = pager_->page_size();
  auto read_bytes = [&](uint64_t start, size_t len, uint8_t* out) {
    size_t done = 0;
    while (done < len) {
      const uint64_t pos = start + done;
      const size_t page_idx = pos / page_size;
      const size_t in_page = pos % page_size;
      const size_t chunk = std::min(len - done, page_size - in_page);
      const PagePin buf = pool_.ReadPinned(pages_[page_idx]);
      std::memcpy(out + done, buf->data() + in_page, chunk);
      done += chunk;
    }
  };

  const size_t dim = div_.dim();
  const size_t fixed = 1 + 4 + 3 * sizeof(double) + dim * sizeof(double);
  std::vector<uint8_t> head(fixed);
  read_bytes(off, fixed, head.data());

  DiskNode node;
  size_t pos = 0;
  node.is_leaf = head[pos] != 0;
  pos += 1;
  node.count = ReadValue<uint32_t>(&head[pos]);
  pos += 4;
  node.ball.radius = ReadValue<double>(&head[pos]);
  pos += 8;
  node.dist_mean = ReadValue<double>(&head[pos]);
  pos += 8;
  node.dist_std = ReadValue<double>(&head[pos]);
  pos += 8;
  node.ball.center.resize(dim);
  std::memcpy(node.ball.center.data(), &head[pos], dim * sizeof(double));

  if (node.is_leaf) {
    node.ids.resize(node.count);
    node.points.resize(size_t(node.count) * dim);
    std::vector<uint8_t> tail(4 * node.count +
                              node.points.size() * sizeof(double));
    read_bytes(off + fixed, tail.size(), tail.data());
    std::memcpy(node.ids.data(), tail.data(), 4 * node.count);
    std::memcpy(node.points.data(), tail.data() + 4 * node.count,
                node.points.size() * sizeof(double));
  } else {
    uint8_t tail[16];
    read_bytes(off + fixed, 16, tail);
    node.left_off = ReadValue<uint64_t>(&tail[0]);
    node.right_off = ReadValue<uint64_t>(&tail[8]);
  }
  return node;
}

std::vector<uint32_t> DiskBBTree::RangeCandidates(std::span<const double> y,
                                                  double radius,
                                                  SearchStats* stats) const {
  BREP_CHECK(y.size() == div_.dim());
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  std::vector<uint32_t> result;
  std::vector<uint64_t> stack{root_offset_};
  while (!stack.empty()) {
    const uint64_t off = stack.back();
    stack.pop_back();
    const DiskNode node = ReadNode(off);
    ++st.nodes_visited;
    if (BallDistanceLowerBound(div_, node.ball, y, grad_y, bound_iters_) >
        radius) {
      continue;
    }
    if (node.is_leaf) {
      ++st.leaves_visited;
      result.insert(result.end(), node.ids.begin(), node.ids.end());
    } else {
      stack.push_back(node.left_off);
      stack.push_back(node.right_off);
    }
  }
  return result;
}

std::vector<uint32_t> DiskBBTree::RangeSearchExact(std::span<const double> y,
                                                   double radius,
                                                   SearchStats* stats) const {
  BREP_CHECK(y.size() == div_.dim());
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  const size_t dim = div_.dim();
  std::vector<double> grad_y(dim);
  div_.Gradient(y, std::span<double>(grad_y));

  std::vector<uint32_t> result;
  std::vector<uint64_t> stack{root_offset_};
  while (!stack.empty()) {
    const uint64_t off = stack.back();
    stack.pop_back();
    const DiskNode node = ReadNode(off);
    ++st.nodes_visited;
    if (BallDistanceLowerBound(div_, node.ball, y, grad_y, bound_iters_) >
        radius) {
      continue;
    }
    if (node.is_leaf) {
      ++st.leaves_visited;
      for (size_t i = 0; i < node.ids.size(); ++i) {
        ++st.points_evaluated;
        const std::span<const double> x(&node.points[i * dim], dim);
        if (div_.Divergence(x, y) <= radius) result.push_back(node.ids[i]);
      }
    } else {
      stack.push_back(node.left_off);
      stack.push_back(node.right_off);
    }
  }
  return result;
}

template <typename Gate>
std::vector<Neighbor> DiskBBTree::KnnImpl(std::span<const double> y, size_t k,
                                          const PointStore& store,
                                          SearchStats* stats,
                                          const Gate& gate) const {
  BREP_CHECK(y.size() == div_.dim());
  BREP_CHECK_MSG(store.dim() == div_.dim(),
                 "disk kNN evaluates in the tree's own space");
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  TopK topk(k);
  struct Entry {
    double lb;
    uint64_t off;
    bool operator>(const Entry& o) const { return lb > o.lb; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.push(Entry{0.0, root_offset_});

  while (!frontier.empty()) {
    const Entry e = frontier.top();
    frontier.pop();
    if (e.lb >= topk.Threshold()) continue;
    const DiskNode node = ReadNode(e.off);
    ++st.nodes_visited;
    if (!gate(e.lb, node, topk.Threshold())) continue;
    if (node.is_leaf) {
      ++st.leaves_visited;
      store.FetchMany(node.ids,
                      [&](uint32_t id, std::span<const double> x) {
                        topk.Push(div_.Divergence(x, y), id);
                        ++st.points_evaluated;
                      });
    } else {
      const DiskNode left = ReadNode(node.left_off);
      const DiskNode right = ReadNode(node.right_off);
      const double lb_l =
          BallDistanceLowerBound(div_, left.ball, y, grad_y, bound_iters_);
      const double lb_r =
          BallDistanceLowerBound(div_, right.ball, y, grad_y, bound_iters_);
      if (lb_l < topk.Threshold()) frontier.push(Entry{lb_l, node.left_off});
      if (lb_r < topk.Threshold()) frontier.push(Entry{lb_r, node.right_off});
    }
  }
  return topk.SortedResults();
}

std::vector<Neighbor> DiskBBTree::KnnSearch(std::span<const double> y,
                                            size_t k, const PointStore& store,
                                            SearchStats* stats) const {
  return KnnImpl(y, k, store, stats,
                 [](double, const DiskNode&, double) { return true; });
}

std::vector<Neighbor> DiskBBTree::KnnSearchVariational(
    std::span<const double> y, size_t k, const PointStore& store,
    double min_expected_hits, SearchStats* stats) const {
  auto gate = [min_expected_hits](double lb, const DiskNode& node,
                                  double threshold) {
    if (threshold == std::numeric_limits<double>::infinity()) return true;
    // Gaussian model of per-point distances within the node: centered at
    // lb + dist_mean with spread dist_std (data-distribution heuristic in
    // the spirit of Coviello et al.'s variational estimate).
    const double sigma = node.dist_std + 1e-12;
    const double z = (threshold - lb - node.dist_mean) / sigma;
    const double p_improve = NormalCdf(z);
    return static_cast<double>(node.count) * p_improve >= min_expected_hits;
  };
  return KnnImpl(y, k, store, stats, gate);
}

}  // namespace brep
