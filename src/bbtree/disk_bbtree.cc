#include "bbtree/disk_bbtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>
#include <utility>

#include "bbtree/kmeans.h"
#include "common/check.h"
#include "common/math_utils.h"
#include "divergence/kernels.h"

namespace brep {
namespace {

void AppendBytes(std::vector<uint8_t>* blob, const void* src, size_t len) {
  const auto* p = static_cast<const uint8_t*>(src);
  blob->insert(blob->end(), p, p + len);
}

template <typename T>
void AppendValue(std::vector<uint8_t>* blob, T v) {
  AppendBytes(blob, &v, sizeof(T));
}

template <typename T>
T ReadValue(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

// Byte offsets of the in-place-updatable header fields.
constexpr uint64_t kOffCount = 1;   // u32 subtree point count
constexpr uint64_t kOffRadius = 5;  // f64 ball radius

// Leaf payload vectors are stored column-major (SoA), in memory and on
// disk: coordinate j of point i lives at points[j * count + i], so the
// batched divergence kernel streams each dimension with unit stride. The
// helpers below keep the layout through the mutating paths.

// Grow a count-row SoA block to count+1 rows in place, appending x as the
// new last row (shift columns back-to-front, then slot in x's coordinate).
void AppendPointSoA(std::vector<double>* pts, size_t count, size_t dim,
                    std::span<const double> x) {
  pts->resize((count + 1) * dim);
  double* p = pts->data();
  for (size_t j = dim; j-- > 0;) {
    std::memmove(p + j * (count + 1), p + j * count, count * sizeof(double));
    p[j * (count + 1) + count] = x[j];
  }
}

// Remove row `pos` from a count-row SoA block in place (compact
// front-to-back; writes never overtake reads).
void ErasePointSoA(std::vector<double>* pts, size_t count, size_t dim,
                   size_t pos) {
  double* p = pts->data();
  for (size_t j = 0; j < dim; ++j) {
    const size_t src = j * count;
    const size_t dst = j * (count - 1);
    for (size_t i = 0, o = 0; i < count; ++i) {
      if (i == pos) continue;
      p[dst + o++] = p[src + i];
    }
  }
  pts->resize((count - 1) * dim);
}

// Materialize a row-major copy (for Matrix-based machinery: k-means splits,
// ball/stat recomputation).
std::vector<double> SoAToRows(const std::vector<double>& pts, size_t count,
                              size_t dim) {
  std::vector<double> rows(count * dim);
  for (size_t j = 0; j < dim; ++j) {
    for (size_t i = 0; i < count; ++i) rows[i * dim + j] = pts[j * count + i];
  }
  return rows;
}

// Concatenate two SoA blocks row-wise (a's rows then b's rows per column).
std::vector<double> ConcatSoA(const std::vector<double>& a, size_t ca,
                              const std::vector<double>& b, size_t cb,
                              size_t dim) {
  std::vector<double> out((ca + cb) * dim);
  for (size_t j = 0; j < dim; ++j) {
    std::copy_n(a.data() + j * ca, ca, out.data() + j * (ca + cb));
    std::copy_n(b.data() + j * cb, cb, out.data() + j * (ca + cb) + ca);
  }
  return out;
}

}  // namespace

DiskBBTree::DiskBBTree(Pager* pager, const BBTree& tree, size_t pool_pages,
                       bool header_child_bounds)
    : pager_(pager),
      src_(pager),
      page_size_(pager == nullptr ? 0 : pager->page_size()),
      div_(tree.divergence()),
      bound_iters_(tree.config().bound_iters),
      header_child_bounds_(header_child_bounds),
      max_leaf_size_(tree.config().max_leaf_size),
      kmeans_iters_(tree.config().kmeans_iters),
      insert_seed_(tree.config().seed ^ 0xD15CF00DULL),
      num_points_(tree.size()),
      full_node_reads_(std::make_shared<std::atomic<uint64_t>>(0)),
      pool_(std::make_shared<BufferPool>(pager, pool_pages)) {
  BREP_CHECK(pager_ != nullptr);
  const auto& nodes = tree.nodes();
  num_nodes_ = nodes.size();
  const size_t dim = div_.dim();
  const size_t fixed = NodeFixedBytes();

  // Subtree point counts (leaf ids roll up to interior nodes).
  std::vector<uint32_t> count(nodes.size(), 0);
  // nodes were appended children-before-parent during Build, so a forward
  // scan sees children first.
  for (size_t i = 0; i < nodes.size(); ++i) {
    count[i] = nodes[i].is_leaf()
                   ? static_cast<uint32_t>(nodes[i].ids.size())
                   : count[nodes[i].left] + count[nodes[i].right];
  }

  // Leaves carry their subspace vectors so exact range search runs on index
  // pages alone (Cayton'09 semantics).
  auto node_size = [&](const BBTree::Node& n) {
    return fixed +
           (n.is_leaf() ? (4 + dim * sizeof(double)) * n.ids.size() : 16);
  };

  // Pre-order offset assignment.
  std::vector<uint64_t> offset(nodes.size(), 0);
  uint64_t cursor = 0;
  std::vector<int32_t> stack{tree.root()};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    offset[idx] = cursor;
    cursor += node_size(nodes[idx]);
    if (!nodes[idx].is_leaf()) {
      stack.push_back(nodes[idx].right);
      stack.push_back(nodes[idx].left);
    }
  }
  root_offset_ = offset[tree.root()];
  BREP_CHECK(root_offset_ == 0);

  // Serialize in the same order.
  std::vector<uint8_t> blob;
  blob.reserve(cursor);
  std::vector<double> soa;
  stack.assign(1, tree.root());
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const BBTree::Node& n = nodes[idx];
    BREP_CHECK(blob.size() == offset[idx]);
    AppendValue<uint8_t>(&blob, n.is_leaf() ? 1 : 0);
    AppendValue<uint32_t>(&blob, count[idx]);
    AppendValue<double>(&blob, n.ball.radius);
    AppendValue<double>(&blob, n.dist_mean);
    AppendValue<double>(&blob, n.dist_std);
    AppendBytes(&blob, n.ball.center.data(), dim * sizeof(double));
    if (n.is_leaf()) {
      AppendBytes(&blob, n.ids.data(), 4 * n.ids.size());
      // Column-major leaf payload (see the SoA helpers above).
      soa.resize(n.ids.size() * dim);
      for (size_t i = 0; i < n.ids.size(); ++i) {
        const auto row = tree.data().Row(n.ids[i]);
        for (size_t j = 0; j < dim; ++j) soa[j * n.ids.size() + i] = row[j];
      }
      AppendBytes(&blob, soa.data(), soa.size() * sizeof(double));
    } else {
      AppendValue<uint64_t>(&blob, offset[n.left]);
      AppendValue<uint64_t>(&blob, offset[n.right]);
      stack.push_back(n.right);
      stack.push_back(n.left);
    }
  }
  blob_size_ = blob.size();
  pages_ = pager_->WriteBlob(blob);
}

DiskBBTree::DiskBBTree(Pager* pager, BregmanDivergence div,
                       const DiskBBTreeLayout& layout, size_t pool_pages)
    : pager_(pager),
      src_(pager),
      page_size_(pager == nullptr ? 0 : pager->page_size()),
      div_(std::move(div)),
      bound_iters_(layout.bound_iters),
      max_leaf_size_(layout.max_leaf_size),
      kmeans_iters_(layout.kmeans_iters),
      insert_seed_(layout.insert_seed),
      num_points_(layout.num_points),
      full_node_reads_(std::make_shared<std::atomic<uint64_t>>(0)),
      pages_(layout.pages),
      blob_size_(layout.blob_size),
      num_nodes_(layout.num_nodes),
      root_offset_(layout.root_offset),
      pool_(std::make_shared<BufferPool>(pager, pool_pages)) {
  BREP_CHECK(pager_ != nullptr);
  BREP_CHECK(!pages_.empty());
  BREP_CHECK(max_leaf_size_ > 0);
  BREP_CHECK(blob_size_ <= pages_.size() * page_size_);
  BREP_CHECK(layout.chunk_offsets.size() == layout.chunk_slots.size());
  for (PageId id : pages_) {
    BREP_CHECK(id == kInvalidPageId || id < pager_->num_pages());
  }
  const size_t page_size = page_size_;
  for (size_t c = 0; c < layout.chunk_offsets.size(); ++c) {
    const uint64_t off = layout.chunk_offsets[c];
    const uint32_t slots = layout.chunk_slots[c];
    BREP_CHECK(off % page_size == 0 && slots > 0);
    BREP_CHECK(off / page_size + slots <= pages_.size());
    chunk_map_[off] = slots;
  }
  // Free slot runs are exactly the maximal runs of released page slots.
  size_t run_start = 0, run_len = 0;
  for (size_t slot = 0; slot <= pages_.size(); ++slot) {
    if (slot < pages_.size() && pages_[slot] == kInvalidPageId) {
      if (run_len == 0) run_start = slot;
      ++run_len;
    } else if (run_len > 0) {
      free_runs_[run_start] = run_len;
      run_len = 0;
    }
  }
}

DiskBBTree::DiskBBTree(const DiskBBTree& writer, const PageSource* src)
    : pager_(nullptr),
      src_(src),
      page_size_(writer.page_size_),
      div_(writer.div_),
      bound_iters_(writer.bound_iters_),
      header_child_bounds_(writer.header_child_bounds_),
      max_leaf_size_(writer.max_leaf_size_),
      kmeans_iters_(writer.kmeans_iters_),
      insert_seed_(writer.insert_seed_),
      num_points_(writer.num_points_),
      full_node_reads_(writer.full_node_reads_),
      pages_(writer.pages_),
      blob_size_(writer.blob_size_),
      num_nodes_(writer.num_nodes_),
      root_offset_(writer.root_offset_),
      // chunk_map_/free_runs_ stay empty: writer-only allocator state that
      // no const search path touches.
      pool_(writer.pool_) {}

std::unique_ptr<DiskBBTree> DiskBBTree::SnapshotClone(
    const PageSource* src) const {
  BREP_CHECK(src != nullptr);
  return std::unique_ptr<DiskBBTree>(new DiskBBTree(*this, src));
}

DiskBBTreeLayout DiskBBTree::layout() const {
  DiskBBTreeLayout layout;
  layout.pages = pages_;
  layout.blob_size = blob_size_;
  layout.num_nodes = num_nodes_;
  layout.root_offset = root_offset_;
  layout.bound_iters = bound_iters_;
  layout.max_leaf_size = max_leaf_size_;
  layout.kmeans_iters = kmeans_iters_;
  layout.insert_seed = insert_seed_;
  layout.num_points = num_points_;
  layout.chunk_offsets.reserve(chunk_map_.size());
  layout.chunk_slots.reserve(chunk_map_.size());
  for (const auto& [off, slots] : chunk_map_) {
    layout.chunk_offsets.push_back(off);
    layout.chunk_slots.push_back(slots);
  }
  return layout;
}

size_t DiskBBTree::index_bytes() const {
  size_t chunk_pages = 0;
  for (const auto& [off, slots] : chunk_map_) chunk_pages += slots;
  return blob_size_ + chunk_pages * page_size_;
}

std::vector<PageId> DiskBBTree::LivePages() const {
  std::vector<PageId> live;
  live.reserve(pages_.size());
  for (PageId id : pages_) {
    if (id != kInvalidPageId) live.push_back(id);
  }
  return live;
}

void DiskBBTree::ReadBytes(uint64_t start, size_t len, uint8_t* out) const {
  // Node pages carry no checksum (the paper's I/O metric would be distorted
  // by verifying every page on every read), so offsets and counts decoded
  // from them are bounds-checked before they can index past the page list
  // or drive a huge allocation: a corrupted page aborts with a message
  // instead of undefined behaviour.
  const uint64_t extent = uint64_t{pages_.size()} * page_size_;
  BREP_CHECK_MSG(uint64_t{len} <= extent && start <= extent - len,
                 "corrupted tree page (node range out of bounds)");
  const size_t page_size = page_size_;
  size_t done = 0;
  while (done < len) {
    const uint64_t pos = start + done;
    const size_t page_idx = pos / page_size;
    const size_t in_page = pos % page_size;
    const size_t chunk = std::min(len - done, page_size - in_page);
    BREP_CHECK_MSG(pages_[page_idx] != kInvalidPageId,
                   "corrupted tree page (node range on a released page)");
    const PagePin buf = pool_->ReadPinned(pages_[page_idx], *src_);
    std::memcpy(out + done, buf->data() + in_page, chunk);
    done += chunk;
  }
}

void DiskBBTree::WriteBytes(uint64_t start, std::span<const uint8_t> bytes) {
  const uint64_t extent = uint64_t{pages_.size()} * page_size_;
  BREP_CHECK(bytes.size() <= extent && start <= extent - bytes.size());
  const size_t page_size = page_size_;
  PageBuffer buf;
  size_t done = 0;
  while (done < bytes.size()) {
    const uint64_t pos = start + done;
    const size_t page_idx = pos / page_size;
    const size_t in_page = pos % page_size;
    const size_t chunk = std::min(bytes.size() - done, page_size - in_page);
    const PageId page = pages_[page_idx];
    BREP_CHECK(page != kInvalidPageId);
    if (chunk == page_size) {
      pager_->Write(page, bytes.subspan(done, chunk));
    } else {
      pager_->Read(page, &buf);
      std::memcpy(buf.data() + in_page, bytes.data() + done, chunk);
      pager_->Write(page, buf);
    }
    done += chunk;
  }
}

template <typename T>
void DiskBBTree::WriteField(uint64_t off, T v) {
  uint8_t raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  WriteBytes(off, std::span<const uint8_t>(raw, sizeof(T)));
}

DiskBBTree::DiskNode DiskBBTree::ReadNodeHeader(uint64_t off) const {
  const size_t dim = div_.dim();
  const size_t fixed = NodeFixedBytes();
  std::vector<uint8_t> head(fixed);
  ReadBytes(off, fixed, head.data());

  DiskNode node;
  size_t pos = 0;
  node.is_leaf = head[pos] != 0;
  pos += 1;
  node.count = ReadValue<uint32_t>(&head[pos]);
  pos += 4;
  node.ball.radius = ReadValue<double>(&head[pos]);
  pos += 8;
  node.dist_mean = ReadValue<double>(&head[pos]);
  pos += 8;
  node.dist_std = ReadValue<double>(&head[pos]);
  pos += 8;
  node.ball.center.resize(dim);
  std::memcpy(node.ball.center.data(), &head[pos], dim * sizeof(double));
  return node;
}

void DiskBBTree::ReadNodeTail(uint64_t off, DiskNode* node) const {
  const size_t dim = div_.dim();
  const size_t fixed = NodeFixedBytes();
  const uint64_t extent = uint64_t{pages_.size()} * page_size_;
  full_node_reads_->fetch_add(1, std::memory_order_relaxed);
  if (node->is_leaf) {
    const uint64_t tail_bytes =
        uint64_t{node->count} * (4 + dim * sizeof(double));
    BREP_CHECK_MSG(  // before any count-driven allocation
        tail_bytes <= extent && off + fixed <= extent - tail_bytes,
        "corrupted tree page (leaf payload out of bounds)");
    node->ids.resize(node->count);
    node->points.resize(size_t(node->count) * dim);
    std::vector<uint8_t> tail(static_cast<size_t>(tail_bytes));
    ReadBytes(off + fixed, tail.size(), tail.data());
    std::memcpy(node->ids.data(), tail.data(), 4 * node->count);
    std::memcpy(node->points.data(), tail.data() + 4 * node->count,
                node->points.size() * sizeof(double));
  } else {
    uint8_t tail[16];
    ReadBytes(off + fixed, 16, tail);
    node->left_off = ReadValue<uint64_t>(&tail[0]);
    node->right_off = ReadValue<uint64_t>(&tail[8]);
  }
}

DiskBBTree::DiskNode DiskBBTree::ReadNode(uint64_t off) const {
  DiskNode node = ReadNodeHeader(off);
  ReadNodeTail(off, &node);
  return node;
}

std::vector<uint8_t> DiskBBTree::EncodeLeaf(const DiskNode& node) const {
  const size_t dim = div_.dim();
  BREP_CHECK(node.points.size() == node.ids.size() * dim);
  std::vector<uint8_t> bytes;
  bytes.reserve(LeafRecordBytes(node.ids.size()));
  AppendValue<uint8_t>(&bytes, 1);
  AppendValue<uint32_t>(&bytes, static_cast<uint32_t>(node.ids.size()));
  AppendValue<double>(&bytes, node.ball.radius);
  AppendValue<double>(&bytes, node.dist_mean);
  AppendValue<double>(&bytes, node.dist_std);
  AppendBytes(&bytes, node.ball.center.data(), dim * sizeof(double));
  AppendBytes(&bytes, node.ids.data(), 4 * node.ids.size());
  AppendBytes(&bytes, node.points.data(),
              node.points.size() * sizeof(double));
  return bytes;
}

std::vector<uint8_t> DiskBBTree::EncodeInterior(const DiskNode& node) const {
  const size_t dim = div_.dim();
  std::vector<uint8_t> bytes;
  bytes.reserve(InteriorRecordBytes());
  AppendValue<uint8_t>(&bytes, 0);
  AppendValue<uint32_t>(&bytes, node.count);
  AppendValue<double>(&bytes, node.ball.radius);
  AppendValue<double>(&bytes, node.dist_mean);
  AppendValue<double>(&bytes, node.dist_std);
  AppendBytes(&bytes, node.ball.center.data(), dim * sizeof(double));
  AppendValue<uint64_t>(&bytes, node.left_off);
  AppendValue<uint64_t>(&bytes, node.right_off);
  return bytes;
}

uint64_t DiskBBTree::AllocChunk(size_t bytes) {
  const size_t page_size = page_size_;
  const size_t slots = (bytes + page_size - 1) / page_size;
  BREP_CHECK(slots > 0);
  size_t start = pages_.size();
  // First fit over the released runs; split the remainder back in.
  for (auto it = free_runs_.begin(); it != free_runs_.end(); ++it) {
    if (it->second < slots) continue;
    start = it->first;
    const size_t remainder = it->second - slots;
    free_runs_.erase(it);
    if (remainder > 0) free_runs_[start + slots] = remainder;
    break;
  }
  if (start == pages_.size()) {
    pages_.resize(pages_.size() + slots, kInvalidPageId);
  }
  for (size_t s = start; s < start + slots; ++s) {
    BREP_CHECK(pages_[s] == kInvalidPageId);
    pages_[s] = pager_->Allocate();
  }
  const uint64_t off = uint64_t{start} * page_size;
  chunk_map_[off] = static_cast<uint32_t>(slots);
  return off;
}

void DiskBBTree::FreeChunkAt(uint64_t off) {
  const auto it = chunk_map_.find(off);
  BREP_CHECK(it != chunk_map_.end());
  const size_t page_size = page_size_;
  const size_t start = off / page_size;
  const size_t slots = it->second;
  for (size_t s = start; s < start + slots; ++s) {
    pager_->Free(pages_[s]);
    pages_[s] = kInvalidPageId;
  }
  chunk_map_.erase(it);
  // Coalesce with adjacent free runs so big leaves can land here later.
  size_t run_start = start, run_len = slots;
  auto next = free_runs_.upper_bound(run_start);
  if (next != free_runs_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == run_start) {
      run_start = prev->first;
      run_len += prev->second;
      free_runs_.erase(prev);
    }
  }
  next = free_runs_.upper_bound(run_start);
  if (next != free_runs_.end() && next->first == run_start + run_len) {
    run_len += next->second;
    free_runs_.erase(next);
  }
  free_runs_[run_start] = run_len;
}

size_t DiskBBTree::AllocCapacity(uint64_t off) const {
  const auto it = chunk_map_.find(off);
  if (it == chunk_map_.end()) return 0;
  return size_t{it->second} * page_size_;
}

uint64_t DiskBBTree::ReplaceNode(uint64_t off, uint64_t parent_off,
                                 bool from_left, size_t old_bytes,
                                 std::span<const uint8_t> bytes) {
  const size_t capacity = std::max(old_bytes, AllocCapacity(off));
  if (bytes.size() <= capacity) {
    WriteBytes(off, bytes);
    return off;
  }
  const uint64_t new_off = AllocChunk(bytes.size());
  WriteBytes(new_off, bytes);
  if (chunk_map_.count(off) > 0) FreeChunkAt(off);
  if (parent_off == kNoNode) {
    root_offset_ = new_off;
  } else {
    WriteField<uint64_t>(parent_off + NodeFixedBytes() + (from_left ? 0 : 8),
                         new_off);
  }
  return new_off;
}

void DiskBBTree::SplitLocal(const Matrix& pts,
                            std::span<const uint32_t> local,
                            std::span<const double> center, Rng& rng,
                            std::vector<uint32_t>* left,
                            std::vector<uint32_t>* right) const {
  left->clear();
  right->clear();
  const KMeansResult split =
      BregmanKMeans(pts, local, div_, 2, rng, kmeans_iters_);
  for (size_t i = 0; i < local.size(); ++i) {
    (split.assignment[i] == 0 ? left : right)->push_back(local[i]);
  }
  if (!left->empty() && !right->empty()) return;
  // Degenerate 2-means (the in-memory tree keeps an oversized leaf here):
  // split at the median divergence to the center instead, which succeeds
  // whenever the points are not all identical and keeps the disk tree's
  // leaf-occupancy invariant strict.
  std::vector<uint32_t> order(local.begin(), local.end());
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return div_.Divergence(pts.Row(a), center) <
           div_.Divergence(pts.Row(b), center);
  });
  left->assign(order.begin(), order.begin() + order.size() / 2);
  right->assign(order.begin() + order.size() / 2, order.end());
}

void DiskBBTree::ComputeBallAndStats(const Matrix& pts,
                                     std::span<const uint32_t> local,
                                     DiskNode* node) const {
  node->ball.center = div_.Mean(pts, local);
  node->ball.radius = 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (uint32_t li : local) {
    const double d = div_.Divergence(pts.Row(li), node->ball.center);
    node->ball.radius = std::max(node->ball.radius, d);
    sum += d;
    sum_sq += d * d;
  }
  const double n = static_cast<double>(local.size());
  node->dist_mean = sum / n;
  node->dist_std = std::sqrt(
      std::max(0.0, sum_sq / n - node->dist_mean * node->dist_mean));
  node->count = static_cast<uint32_t>(local.size());
}

uint64_t DiskBBTree::WriteSubtree(const Matrix& pts,
                                  std::span<const uint32_t> global_ids,
                                  std::span<const uint32_t> local, Rng& rng) {
  const size_t dim = div_.dim();
  DiskNode node;
  ComputeBallAndStats(pts, local, &node);

  if (local.size() > max_leaf_size_ && node.ball.radius > 0.0) {
    std::vector<uint32_t> left_local, right_local;
    SplitLocal(pts, local, node.ball.center, rng, &left_local, &right_local);
    node.is_leaf = false;
    node.left_off = WriteSubtree(pts, global_ids, left_local, rng);
    node.right_off = WriteSubtree(pts, global_ids, right_local, rng);
    const std::vector<uint8_t> bytes = EncodeInterior(node);
    const uint64_t off = AllocChunk(bytes.size());
    WriteBytes(off, bytes);
    ++num_nodes_;
    return off;
  }

  node.is_leaf = true;
  node.ids.reserve(local.size());
  for (uint32_t li : local) node.ids.push_back(global_ids[li]);
  node.points.resize(local.size() * dim);
  for (size_t i = 0; i < local.size(); ++i) {
    const auto row = pts.Row(local[i]);
    for (size_t j = 0; j < dim; ++j) node.points[j * local.size() + i] = row[j];
  }
  const std::vector<uint8_t> bytes = EncodeLeaf(node);
  const uint64_t off = AllocChunk(bytes.size());
  WriteBytes(off, bytes);
  ++num_nodes_;
  return off;
}

void DiskBBTree::Insert(uint32_t id, std::span<const double> x) {
  BREP_CHECK(x.size() == div_.dim());
  if (root_offset_ == kNoNode) {
    DiskNode node;
    node.is_leaf = true;
    node.ball.center.assign(x.begin(), x.end());
    node.ball.radius = 0.0;
    node.count = 1;
    node.ids.push_back(id);
    node.points.assign(x.begin(), x.end());
    const std::vector<uint8_t> bytes = EncodeLeaf(node);
    root_offset_ = AllocChunk(bytes.size());
    WriteBytes(root_offset_, bytes);
    ++num_nodes_;
    num_points_ = 1;
    return;
  }

  // Descend to the leaf whose center is nearest, widening every ball and
  // bumping every subtree count on the way (the in-memory tree's
  // Insert semantics, executed as in-place header field writes).
  uint64_t off = root_offset_;
  uint64_t parent_off = kNoNode;
  bool from_left = false;
  while (true) {
    DiskNode node = ReadNodeHeader(off);
    const double d = div_.Divergence(x, node.ball.center);
    const double widened = std::max(node.ball.radius, d);
    if (node.is_leaf) {
      InsertIntoLeaf(off, parent_off, from_left, std::move(node), widened, id,
                     x);
      break;
    }
    // Count and radius are adjacent header fields -- one read-modify-write
    // of the page covers both.
    if (widened != node.ball.radius) {
      uint8_t fields[4 + 8];
      const uint32_t count = node.count + 1;
      std::memcpy(fields, &count, 4);
      std::memcpy(fields + 4, &widened, 8);
      WriteBytes(off + kOffCount, fields);
    } else {
      WriteField<uint32_t>(off + kOffCount, node.count + 1);
    }
    ReadNodeTail(off, &node);
    const DiskNode left = ReadNodeHeader(node.left_off);
    const DiskNode right = ReadNodeHeader(node.right_off);
    const double d_left = div_.Divergence(x, left.ball.center);
    const double d_right = div_.Divergence(x, right.ball.center);
    parent_off = off;
    from_left = d_left <= d_right;
    off = from_left ? node.left_off : node.right_off;
  }
  ++num_points_;
}

void DiskBBTree::InsertIntoLeaf(uint64_t off, uint64_t parent_off,
                                bool from_left, DiskNode leaf,
                                double widened_radius, uint32_t id,
                                std::span<const double> x) {
  ReadNodeTail(off, &leaf);
  const size_t old_bytes = LeafRecordBytes(leaf.ids.size());
  AppendPointSoA(&leaf.points, leaf.ids.size(), div_.dim(), x);
  leaf.ids.push_back(id);
  leaf.ball.radius = widened_radius;
  leaf.count = static_cast<uint32_t>(leaf.ids.size());

  if (leaf.ids.size() <= max_leaf_size_ || leaf.ball.radius <= 0.0) {
    ReplaceNode(off, parent_off, from_left, old_bytes, EncodeLeaf(leaf));
    return;
  }

  // Overflow: split by Bregman 2-means, exactly like construction. The
  // leaf's logical position becomes an interior node keeping the (widened)
  // ball; the two sides are built from scratch, like BBTree::Insert.
  Rng rng(insert_seed_++);
  std::vector<uint32_t> global_ids = std::move(leaf.ids);
  const Matrix pts(global_ids.size(), div_.dim(),
                   SoAToRows(leaf.points, global_ids.size(), div_.dim()));
  std::vector<uint32_t> local(global_ids.size());
  std::iota(local.begin(), local.end(), 0);
  std::vector<uint32_t> left_local, right_local;
  SplitLocal(pts, local, leaf.ball.center, rng, &left_local, &right_local);

  DiskNode interior;
  interior.is_leaf = false;
  interior.ball = std::move(leaf.ball);
  interior.dist_mean = leaf.dist_mean;
  interior.dist_std = leaf.dist_std;
  interior.count = static_cast<uint32_t>(global_ids.size());
  interior.left_off = WriteSubtree(pts, global_ids, left_local, rng);
  interior.right_off = WriteSubtree(pts, global_ids, right_local, rng);
  // One leaf became one interior plus the freshly written subtrees (counted
  // by WriteSubtree), so only the replacement is count-neutral. An interior
  // record never outgrows the leaf it replaces (a leaf about to split holds
  // at least two payload entries, which outweigh two child offsets).
  ReplaceNode(off, parent_off, from_left, old_bytes, EncodeInterior(interior));
}

bool DiskBBTree::FindLeafPath(uint64_t off, bool from_left,
                              std::span<const double> x, uint32_t id,
                              std::vector<PathFrame>* path) const {
  DiskNode node = ReadNodeHeader(off);
  // Exact containment: the stored vector's divergence to every ancestor
  // center was folded into that ancestor's radius (max) by construction or
  // by the insert descent, and both sides recompute through the same
  // non-inlined Divergence, so a strict comparison never prunes the leaf
  // actually holding the id.
  if (div_.Divergence(x, node.ball.center) > node.ball.radius) return false;
  path->push_back(PathFrame{off, node.count, from_left});
  ReadNodeTail(off, &node);
  if (node.is_leaf) {
    if (std::find(node.ids.begin(), node.ids.end(), id) != node.ids.end()) {
      return true;
    }
  } else {
    if (FindLeafPath(node.left_off, true, x, id, path)) return true;
    if (FindLeafPath(node.right_off, false, x, id, path)) return true;
  }
  path->pop_back();
  return false;
}

bool DiskBBTree::TryMergeWithSibling(const DiskNode& leaf,
                                     const std::vector<PathFrame>& path) {
  if (path.size() < 2) return false;  // the leaf is the root
  const PathFrame leaf_frame = path.back();
  const PathFrame parent = path[path.size() - 2];
  DiskNode pnode = ReadNode(parent.off);
  BREP_CHECK(!pnode.is_leaf);
  const uint64_t sib_off =
      leaf_frame.from_left ? pnode.right_off : pnode.left_off;
  DiskNode sibling = ReadNodeHeader(sib_off);
  // Merge a leaf pair that shrank to three quarters of a leaf's capacity:
  // aggressive enough that delete churn actually reclaims structure (and
  // chunk pages) instead of accumulating near-empty leaves, with a
  // quarter-leaf of headroom against thrashing into the next split.
  if (!sibling.is_leaf ||
      leaf.ids.size() + sibling.count > max_leaf_size_ * 3 / 4) {
    return false;
  }
  ReadNodeTail(sib_off, &sibling);

  DiskNode merged;
  merged.is_leaf = true;
  merged.ids = leaf.ids;
  merged.ids.insert(merged.ids.end(), sibling.ids.begin(),
                    sibling.ids.end());
  merged.points = ConcatSoA(leaf.points, leaf.ids.size(), sibling.points,
                            sibling.ids.size(), div_.dim());
  // Exact fresh geometry (center = mean, radius = max divergence), like a
  // bulk-built leaf: containment stays bit-exact for later deletes.
  const Matrix pts(merged.ids.size(), div_.dim(),
                   SoAToRows(merged.points, merged.ids.size(), div_.dim()));
  std::vector<uint32_t> local(merged.ids.size());
  std::iota(local.begin(), local.end(), 0);
  ComputeBallAndStats(pts, local, &merged);

  // The merged leaf takes the parent's place; both old leaf records die.
  const uint64_t grand_off =
      path.size() >= 3 ? path[path.size() - 3].off : kNoNode;
  const bool parent_from_left = parent.from_left;
  if (chunk_map_.count(leaf_frame.off) > 0) FreeChunkAt(leaf_frame.off);
  if (chunk_map_.count(sib_off) > 0) FreeChunkAt(sib_off);
  ReplaceNode(parent.off, grand_off, parent_from_left,
              InteriorRecordBytes(), EncodeLeaf(merged));
  num_nodes_ -= 2;
  return true;
}

bool DiskBBTree::Delete(uint32_t id, std::span<const double> x) {
  BREP_CHECK(x.size() == div_.dim());
  if (root_offset_ == kNoNode) return false;
  std::vector<PathFrame> path;
  if (!FindLeafPath(root_offset_, false, x, id, &path)) return false;

  const PathFrame leaf_frame = path.back();
  DiskNode leaf = ReadNode(leaf_frame.off);
  const auto it = std::find(leaf.ids.begin(), leaf.ids.end(), id);
  BREP_CHECK(it != leaf.ids.end());
  const size_t dim = div_.dim();
  const size_t pos = static_cast<size_t>(it - leaf.ids.begin());
  ErasePointSoA(&leaf.points, leaf.ids.size(), dim, pos);
  leaf.ids.erase(it);
  leaf.count = static_cast<uint32_t>(leaf.ids.size());

  size_t ancestors = path.size() - 1;
  if (!leaf.ids.empty()) {
    if (!TryMergeWithSibling(leaf, path)) {
      // Shrinking rewrite always fits in place. The ball is left as-is: a
      // valid (possibly loose) cover, like the in-memory tree.
      WriteBytes(leaf_frame.off, EncodeLeaf(leaf));
    } else {
      ancestors = path.size() - 2;
    }
  } else if (path.size() == 1) {
    // The tree's last point: collapse to the empty state.
    if (chunk_map_.count(leaf_frame.off) > 0) FreeChunkAt(leaf_frame.off);
    root_offset_ = kNoNode;
    num_nodes_ -= 1;
    ancestors = 0;
  } else {
    // Empty leaf: splice its sibling into the grandparent and return both
    // records' chunk pages (if any) to the free-list.
    const PathFrame parent = path[path.size() - 2];
    DiskNode pnode = ReadNode(parent.off);
    BREP_CHECK(!pnode.is_leaf);
    const uint64_t sibling =
        leaf_frame.from_left ? pnode.right_off : pnode.left_off;
    if (path.size() == 2) {
      root_offset_ = sibling;
    } else {
      const PathFrame grand = path[path.size() - 3];
      WriteField<uint64_t>(
          grand.off + NodeFixedBytes() + (parent.from_left ? 0 : 8), sibling);
    }
    if (chunk_map_.count(leaf_frame.off) > 0) FreeChunkAt(leaf_frame.off);
    if (chunk_map_.count(parent.off) > 0) FreeChunkAt(parent.off);
    num_nodes_ -= 2;
    ancestors = path.size() - 2;
  }
  for (size_t i = 0; i < ancestors; ++i) {
    WriteField<uint32_t>(path[i].off + kOffCount, path[i].count - 1);
  }
  --num_points_;
  return true;
}

uint32_t DiskBBTree::CheckSubtree(
    uint64_t off, std::vector<const DiskNode*>* ancestors, uint64_t* nodes,
    std::vector<std::pair<uint64_t, uint64_t>>* extents) const {
  const DiskNode node = ReadNode(off);
  ++*nodes;
  const size_t record_bytes = node.is_leaf ? LeafRecordBytes(node.ids.size())
                                           : InteriorRecordBytes();
  extents->emplace_back(off, off + record_bytes);
  // A record must stay inside its allocation: the bulk-built packed region
  // for original nodes, the registered chunk for relocated/split ones.
  const auto chunk = chunk_map_.find(off);
  if (chunk != chunk_map_.end()) {
    BREP_CHECK_MSG(record_bytes <=
                       size_t{chunk->second} * page_size_,
                   "node record overflows its chunk");
  } else {
    BREP_CHECK_MSG(off + record_bytes <= blob_size_,
                   "node record outside the packed region and any chunk");
  }

  uint32_t count = 0;
  if (node.is_leaf) {
    BREP_CHECK_MSG(!node.ids.empty(), "empty leaf left in the tree");
    BREP_CHECK_MSG(node.ids.size() <= max_leaf_size_ ||
                       node.ball.radius <= 0.0,
                   "oversized leaf (missed split)");
    const size_t dim = div_.dim();
    std::vector<double> p(dim);
    for (size_t i = 0; i < node.ids.size(); ++i) {
      for (size_t j = 0; j < dim; ++j) {
        p[j] = node.points[j * node.ids.size() + i];
      }
      BREP_CHECK_MSG(
          div_.Divergence(p, node.ball.center) <= node.ball.radius,
          "leaf ball does not contain its point");
      for (const DiskNode* anc : *ancestors) {
        BREP_CHECK_MSG(
            div_.Divergence(p, anc->ball.center) <= anc->ball.radius,
            "ancestor ball does not contain a descendant point");
      }
    }
    count = static_cast<uint32_t>(node.ids.size());
  } else {
    ancestors->push_back(&node);
    const uint32_t left = CheckSubtree(node.left_off, ancestors, nodes,
                                       extents);
    const uint32_t right = CheckSubtree(node.right_off, ancestors, nodes,
                                        extents);
    ancestors->pop_back();
    count = left + right;
  }
  BREP_CHECK_MSG(count == node.count, "subtree count field drifted");
  return count;
}

void DiskBBTree::DebugCheckInvariants() const {
  const size_t page_size = page_size_;
  const size_t packed_slots = (blob_size_ + page_size - 1) / page_size;
  BREP_CHECK(packed_slots <= pages_.size());

  // The page table partitions into: packed region, chunks, free runs. No
  // slot may be claimed twice, no page referenced twice, free runs hold
  // exactly the released (kInvalidPageId) slots.
  std::vector<char> state(pages_.size(), 0);  // 1 packed, 2 chunk, 3 free
  for (size_t s = 0; s < packed_slots; ++s) {
    BREP_CHECK_MSG(pages_[s] != kInvalidPageId,
                   "packed-region page was released");
    state[s] = 1;
  }
  for (const auto& [off, slots] : chunk_map_) {
    BREP_CHECK_MSG(off % page_size == 0, "chunk offset not page-aligned");
    const size_t start = off / page_size;
    BREP_CHECK_MSG(start >= packed_slots &&
                       start + slots <= pages_.size() && slots > 0,
                   "chunk outside the mutable slot range");
    for (size_t s = start; s < start + slots; ++s) {
      BREP_CHECK_MSG(state[s] == 0, "page slot claimed twice");
      BREP_CHECK_MSG(pages_[s] != kInvalidPageId, "chunk page was released");
      state[s] = 2;
    }
  }
  for (const auto& [start, len] : free_runs_) {
    BREP_CHECK_MSG(start + len <= pages_.size() && len > 0,
                   "free run out of range");
    for (size_t s = start; s < start + len; ++s) {
      BREP_CHECK_MSG(state[s] == 0, "page slot claimed twice");
      BREP_CHECK_MSG(pages_[s] == kInvalidPageId,
                     "free run covers a live page");
      state[s] = 3;
    }
  }
  std::vector<PageId> live;
  for (size_t s = 0; s < pages_.size(); ++s) {
    BREP_CHECK_MSG(state[s] != 0, "page slot not accounted for");
    if (pages_[s] != kInvalidPageId) live.push_back(pages_[s]);
  }
  std::sort(live.begin(), live.end());
  BREP_CHECK_MSG(std::adjacent_find(live.begin(), live.end()) == live.end(),
                 "page referenced twice by one tree");

  if (root_offset_ == kNoNode) {
    BREP_CHECK_MSG(num_points_ == 0 && num_nodes_ == 0,
                   "empty tree with non-zero counters");
    BREP_CHECK_MSG(chunk_map_.empty(), "empty tree still owns chunks");
    return;
  }
  std::vector<const DiskNode*> ancestors;
  std::vector<std::pair<uint64_t, uint64_t>> extents;
  uint64_t nodes = 0;
  const uint32_t total = CheckSubtree(root_offset_, &ancestors, &nodes,
                                      &extents);
  BREP_CHECK_MSG(total == num_points_, "tree point count drifted");
  BREP_CHECK_MSG(nodes == num_nodes_, "tree node count drifted");
  std::sort(extents.begin(), extents.end());
  for (size_t i = 1; i < extents.size(); ++i) {
    BREP_CHECK_MSG(extents[i - 1].second <= extents[i].first,
                   "node records overlap");
  }
}

std::vector<uint32_t> DiskBBTree::RangeCandidates(std::span<const double> y,
                                                  double radius,
                                                  SearchStats* stats) const {
  BREP_CHECK(y.size() == div_.dim());
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  if (root_offset_ == kNoNode) return {};

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  std::vector<uint32_t> result;
  std::vector<uint64_t> stack{root_offset_};
  while (!stack.empty()) {
    const uint64_t off = stack.back();
    stack.pop_back();
    // Header first: a pruned node never pays for its payload (same I/O fix
    // as the kNN descent); a surviving node continues with just the tail.
    DiskNode node = ReadNodeHeader(off);
    ++st.nodes_visited;
    if (BallDistanceLowerBound(div_, node.ball, y, grad_y, bound_iters_) >
        radius) {
      continue;
    }
    ReadNodeTail(off, &node);
    if (node.is_leaf) {
      ++st.leaves_visited;
      result.insert(result.end(), node.ids.begin(), node.ids.end());
    } else {
      stack.push_back(node.left_off);
      stack.push_back(node.right_off);
    }
  }
  return result;
}

std::vector<uint32_t> DiskBBTree::RangeSearchExact(std::span<const double> y,
                                                   double radius,
                                                   SearchStats* stats) const {
  BREP_CHECK(y.size() == div_.dim());
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  if (root_offset_ == kNoNode) return {};

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  // Batched leaf evaluation straight off the SoA payload: phi(y)/phi'(y)
  // are cached once, each leaf's columns stream unit-stride through the
  // active kernel backend (byte-identical to per-point Divergence).
  const simd::DivergenceScan scan(div_, y);
  std::vector<double> leaf_d;
  leaf_d.reserve(max_leaf_size_);

  std::vector<uint32_t> result;
  std::vector<uint64_t> stack{root_offset_};
  while (!stack.empty()) {
    const uint64_t off = stack.back();
    stack.pop_back();
    DiskNode node = ReadNodeHeader(off);
    ++st.nodes_visited;
    if (BallDistanceLowerBound(div_, node.ball, y, grad_y, bound_iters_) >
        radius) {
      continue;
    }
    ReadNodeTail(off, &node);
    if (node.is_leaf) {
      ++st.leaves_visited;
      leaf_d.resize(node.ids.size());
      scan.BatchSoA(node.points.data(), node.ids.size(), leaf_d.data());
      for (size_t i = 0; i < node.ids.size(); ++i) {
        ++st.points_evaluated;
        if (leaf_d[i] <= radius) result.push_back(node.ids[i]);
      }
    } else {
      stack.push_back(node.left_off);
      stack.push_back(node.right_off);
    }
  }
  return result;
}

template <typename Gate>
std::vector<Neighbor> DiskBBTree::KnnImpl(std::span<const double> y, size_t k,
                                          const PointStore& store,
                                          SearchStats* stats,
                                          const Gate& gate) const {
  BREP_CHECK(y.size() == div_.dim());
  BREP_CHECK_MSG(store.dim() == div_.dim(),
                 "disk kNN evaluates in the tree's own space");
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  if (root_offset_ == kNoNode) return {};

  std::vector<double> grad_y(div_.dim());
  div_.Gradient(y, std::span<double>(grad_y));

  // phi(y)/phi'(y) cached once for every leaf point fetched below.
  const simd::DivergenceScan scan(div_, y);

  TopK topk(k);
  // In header-child-bounds mode the frontier carries each node's decoded
  // header (read once, at push time, to compute its bound), so a popped
  // node fetches only its tail -- no byte is read or decoded twice on the
  // descent. The legacy mode reproduces the old double-read behaviour for
  // the I/O regression test: full child reads at expansion (counted in
  // nodes_visited as the materializations they are) and a fresh full read
  // on pop.
  struct Entry {
    double lb;
    uint64_t off;
    DiskNode header;  // populated in header-child-bounds mode only
    bool operator>(const Entry& o) const { return lb > o.lb; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.push(Entry{0.0, root_offset_,
                      header_child_bounds_ ? ReadNodeHeader(root_offset_)
                                           : DiskNode{}});

  while (!frontier.empty()) {
    // Move rather than copy: the entry carries the node's center vector and
    // is discarded by the pop() on the next line, so stealing its buffers
    // is safe and keeps the pop allocation-free.
    Entry e = std::move(const_cast<Entry&>(frontier.top()));
    frontier.pop();
    if (e.lb >= topk.Threshold()) continue;
    DiskNode node;
    if (header_child_bounds_) {
      node = std::move(e.header);
      ReadNodeTail(e.off, &node);
    } else {
      node = ReadNode(e.off);
    }
    ++st.nodes_visited;
    if (!gate(e.lb, node, topk.Threshold())) continue;
    if (node.is_leaf) {
      ++st.leaves_visited;
      store.FetchMany(node.ids,
                      [&](uint32_t id, std::span<const double> x) {
                        topk.Push(scan.One(x), id);
                        ++st.points_evaluated;
                      });
    } else {
      DiskNode left = header_child_bounds_ ? ReadNodeHeader(node.left_off)
                                           : ReadNode(node.left_off);
      DiskNode right = header_child_bounds_ ? ReadNodeHeader(node.right_off)
                                            : ReadNode(node.right_off);
      if (!header_child_bounds_) st.nodes_visited += 2;
      const double lb_l =
          BallDistanceLowerBound(div_, left.ball, y, grad_y, bound_iters_);
      const double lb_r =
          BallDistanceLowerBound(div_, right.ball, y, grad_y, bound_iters_);
      if (lb_l < topk.Threshold()) {
        frontier.push(Entry{lb_l, node.left_off,
                            header_child_bounds_ ? std::move(left)
                                                 : DiskNode{}});
      }
      if (lb_r < topk.Threshold()) {
        frontier.push(Entry{lb_r, node.right_off,
                            header_child_bounds_ ? std::move(right)
                                                 : DiskNode{}});
      }
    }
  }
  return topk.SortedResults();
}

std::vector<Neighbor> DiskBBTree::KnnSearch(std::span<const double> y,
                                            size_t k, const PointStore& store,
                                            SearchStats* stats) const {
  return KnnImpl(y, k, store, stats,
                 [](double, const DiskNode&, double) { return true; });
}

std::vector<Neighbor> DiskBBTree::KnnSearchVariational(
    std::span<const double> y, size_t k, const PointStore& store,
    double min_expected_hits, SearchStats* stats) const {
  auto gate = [min_expected_hits](double lb, const DiskNode& node,
                                  double threshold) {
    if (threshold == std::numeric_limits<double>::infinity()) return true;
    // Gaussian model of per-point distances within the node: centered at
    // lb + dist_mean with spread dist_std (data-distribution heuristic in
    // the spirit of Coviello et al.'s variational estimate).
    const double sigma = node.dist_std + 1e-12;
    const double z = (threshold - lb - node.dist_mean) / sigma;
    const double p_improve = NormalCdf(z);
    return static_cast<double>(node.count) * p_improve >= min_expected_hits;
  };
  return KnnImpl(y, k, store, stats, gate);
}

}  // namespace brep
