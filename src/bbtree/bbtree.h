#ifndef BREP_BBTREE_BBTREE_H_
#define BREP_BBTREE_BBTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "bbtree/ball.h"
#include "common/rng.h"
#include "common/top_k.h"
#include "dataset/matrix.h"
#include "divergence/bregman.h"

namespace brep {

/// Construction parameters for BB-trees.
struct BBTreeConfig {
  /// Split nodes with more than this many points.
  size_t max_leaf_size = 64;
  /// Lloyd iterations per 2-means split.
  int kmeans_iters = 10;
  /// Bisection iterations for ball lower bounds at query time.
  int bound_iters = 40;
  /// Seed for the (deterministic) clustering randomness.
  uint64_t seed = 42;
};

/// Logical work counters for a single tree search.
struct SearchStats {
  size_t nodes_visited = 0;
  size_t leaves_visited = 0;
  size_t points_evaluated = 0;
};

/// In-memory Bregman Ball tree (Cayton, ICML 2008).
///
/// Built by hierarchical Bregman 2-means; every node carries the Bregman
/// ball of its points. Supports exact branch-and-bound kNN (Cayton '08),
/// exact range search and cluster-granularity range candidates (Cayton
/// NIPS '09, as used by the paper's filter step). This is both a baseline
/// in its own right and the construction template that DiskBBTree
/// serializes to the simulated disk.
///
/// The referenced `data` matrix must outlive the tree (the tree stores row
/// ids, not copies).
class BBTree {
 public:
  /// One tree node. `left < 0` marks a leaf holding `ids`.
  struct Node {
    BregmanBall ball;
    /// Mean/stddev of D(x, center) over the node's points -- the data
    /// distribution statistic used by the "Var"-style approximate search.
    double dist_mean = 0.0;
    double dist_std = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    std::vector<uint32_t> ids;  // leaf only

    bool is_leaf() const { return left < 0; }
  };

  BBTree(const Matrix& data, const BregmanDivergence& div,
         const BBTreeConfig& config);

  /// Exact kNN of `y` (paper convention: minimize D(x, y)).
  std::vector<Neighbor> KnnSearch(std::span<const double> y, size_t k,
                                  SearchStats* stats = nullptr) const;

  /// Exact range search: all ids with D(x, y) <= radius.
  std::vector<uint32_t> RangeSearch(std::span<const double> y, double radius,
                                    SearchStats* stats = nullptr) const;

  /// Cluster-granularity range filter: the union of all points of every
  /// leaf whose ball may intersect {x : D(x, y) <= radius}. Superset of
  /// RangeSearch; this is the candidate set the paper's framework loads
  /// from disk for refinement.
  std::vector<uint32_t> RangeCandidates(std::span<const double> y,
                                        double radius,
                                        SearchStats* stats = nullptr) const;

  /// Point ids in left-to-right leaf order; the BB-forest lays out the
  /// point store in this order (paper Section 6).
  std::vector<uint32_t> LeafOrder() const;

  /// Incremental maintenance (the paper's named future-work item).
  /// ------------------------------------------------------------------
  /// Insert row `id` of the data matrix (which must already contain it):
  /// descends to the closer child at each level, widening every ball on the
  /// path so containment invariants hold, and splits the target leaf by
  /// Bregman 2-means when it overflows max_leaf_size. Search correctness is
  /// unaffected: balls stay valid upper bounds of their subtrees.
  void Insert(uint32_t id);

  /// Remove a point by id. Returns false if the id is not present. Balls
  /// are not shrunk (they remain valid, possibly loose, bounds); O(#nodes).
  bool Delete(uint32_t id);

  /// Number of points currently indexed.
  size_t size() const { return size_; }

  const std::vector<Node>& nodes() const { return nodes_; }
  int32_t root() const { return root_; }
  const Matrix& data() const { return *data_; }
  size_t dim() const { return div_.dim(); }
  const BregmanDivergence& divergence() const { return div_; }
  const BBTreeConfig& config() const { return config_; }

 private:
  int32_t Build(std::span<const uint32_t> ids, Rng& rng);
  double NodeLowerBound(const Node& node, std::span<const double> y,
                        std::span<const double> grad_y) const;

  const Matrix* data_;
  BregmanDivergence div_;
  BBTreeConfig config_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t size_ = 0;
  uint64_t insert_seed_;  // deterministic randomness for overflow splits
};

}  // namespace brep

#endif  // BREP_BBTREE_BBTREE_H_
