#include "storage/snapshot.h"

#include <cstring>

#include "common/check.h"

namespace brep {

PageSnapshot::PageSnapshot(Pager& pager)
    : base_(&pager),
      page_size_(pager.page_size()),
      num_pages_(pager.num_pages()),
      free_head_(pager.free_list_head()),
      free_count_(pager.num_free_pages()),
      catalog_(pager.catalog()),
      table_(pager.table_),
      shadow_pages_(pager.shadow_pages_) {
  // From here on, any shadow buffer that existed at capture time is shared
  // with this snapshot: the pager must stop overwriting them in place.
  pager.last_snapshot_gen_ = pager.next_gen_;
}

void PageSnapshot::FetchPage(PageId id, PageBuffer* out) const {
  BREP_CHECK(id < num_pages_);
  out->resize(page_size_);
  const Pager::VersionedPage& entry = table_[id];
  if (entry.data != nullptr) {
    std::memcpy(out->data(), entry.data->data(), page_size_);
  } else {
    base_->DoRead(id, out->data());
  }
  base_->reads_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t PageSnapshot::PageGen(PageId id) const {
  BREP_CHECK(id < num_pages_);
  return table_[id].gen;
}

}  // namespace brep
