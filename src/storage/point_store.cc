#include "storage/point_store.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace brep {

PointStore::PointStore(Pager* pager, const Matrix& data,
                       std::span<const uint32_t> order)
    : pager_(pager), dim_(data.cols()) {
  BREP_CHECK(pager_ != nullptr);
  BREP_CHECK(!data.empty());
  const size_t point_bytes = dim_ * sizeof(double);
  BREP_CHECK_MSG(point_bytes <= pager_->page_size(),
                 "page size too small for one point");
  points_per_page_ = PointsPerPage(pager_->page_size(), dim_);

  const size_t n = data.rows();
  std::vector<uint32_t> layout;
  if (order.empty()) {
    layout.resize(n);
    for (size_t i = 0; i < n; ++i) layout[i] = static_cast<uint32_t>(i);
  } else {
    BREP_CHECK(order.size() == n);
    layout.assign(order.begin(), order.end());
  }

  address_of_.resize(n);
  std::vector<uint8_t> page_bytes(pager_->page_size(), 0);
  size_t slot = 0;
  PageId current = kInvalidPageId;
  auto flush = [&]() {
    if (current != kInvalidPageId && slot > 0) {
      pager_->Write(current, page_bytes);
    }
  };
  for (size_t i = 0; i < n; ++i) {
    if (slot == 0) {
      current = pager_->Allocate();
      data_pages_.push_back(current);
      page_ids_.emplace_back();
      std::fill(page_bytes.begin(), page_bytes.end(), 0);
    }
    const uint32_t id = layout[i];
    const auto row = data.Row(id);
    std::memcpy(page_bytes.data() + slot * point_bytes, row.data(),
                point_bytes);
    address_of_[id] = PointAddress{current, static_cast<uint16_t>(slot)};
    page_ids_.back().push_back(id);
    if (++slot == points_per_page_) {
      pager_->Write(current, page_bytes);
      slot = 0;
    }
  }
  flush();
}

PointStore::PointStore(Pager* pager, const PointStoreLayout& layout)
    : pager_(pager), dim_(layout.dim) {
  BREP_CHECK(pager_ != nullptr);
  BREP_CHECK(dim_ > 0);
  const size_t point_bytes = dim_ * sizeof(double);
  BREP_CHECK_MSG(point_bytes <= pager_->page_size(),
                 "page size too small for one point");
  points_per_page_ = PointsPerPage(pager_->page_size(), dim_);

  const size_t n = layout.order.size();
  BREP_CHECK(n > 0);
  const size_t pages = (n + points_per_page_ - 1) / points_per_page_;
  BREP_CHECK_MSG(layout.data_pages.size() == pages,
                 "point-store layout page count mismatch");

  data_pages_ = layout.data_pages;
  address_of_.resize(n);
  page_ids_.resize(pages);
  for (size_t i = 0; i < n; ++i) {
    const size_t page = i / points_per_page_;
    const size_t slot = i % points_per_page_;
    const uint32_t id = layout.order[i];
    BREP_CHECK(id < n);
    const PageId page_id = data_pages_[page];
    BREP_CHECK(page_id < pager_->num_pages());
    address_of_[id] = PointAddress{page_id, static_cast<uint16_t>(slot)};
    page_ids_[page].push_back(id);
  }
}

PointStoreLayout PointStore::layout() const {
  PointStoreLayout layout;
  layout.dim = dim_;
  layout.data_pages = data_pages_;
  layout.order.reserve(address_of_.size());
  for (const auto& ids : page_ids_) {
    layout.order.insert(layout.order.end(), ids.begin(), ids.end());
  }
  return layout;
}

void PointStore::Fetch(uint32_t id, std::span<double> out) const {
  BREP_CHECK(id < address_of_.size());
  BREP_CHECK(out.size() == dim_);
  const PointAddress addr = address_of_[id];
  PageBuffer buf;
  pager_->Read(addr.page, &buf);
  std::memcpy(out.data(), buf.data() + addr.slot * dim_ * sizeof(double),
              dim_ * sizeof(double));
}

void PointStore::FetchMany(
    std::span<const uint32_t> ids,
    const std::function<void(uint32_t, std::span<const double>)>& cb) const {
  // Group requested ids by page, then read each page once in ascending
  // order (a real engine would sort candidate addresses the same way).
  std::vector<uint32_t> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end(), [&](uint32_t a, uint32_t b) {
    const PointAddress pa = address_of_[a];
    const PointAddress pb = address_of_[b];
    if (pa.page != pb.page) return pa.page < pb.page;
    return pa.slot < pb.slot;
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  PageBuffer buf;
  PageId loaded = kInvalidPageId;
  for (uint32_t id : sorted) {
    const PointAddress addr = address_of_[id];
    if (addr.page != loaded) {
      pager_->Read(addr.page, &buf);
      loaded = addr.page;
    }
    const auto* doubles = reinterpret_cast<const double*>(
        buf.data() + addr.slot * dim_ * sizeof(double));
    cb(id, std::span<const double>(doubles, dim_));
  }
}

size_t PointStore::CountDistinctPages(std::span<const uint32_t> ids) const {
  std::vector<PageId> pages;
  pages.reserve(ids.size());
  for (uint32_t id : ids) pages.push_back(address_of_[id].page);
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  return pages.size();
}

}  // namespace brep
