#include "storage/point_store.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace brep {

PointStore::PointStore(Pager* pager, const Matrix& data,
                       std::span<const uint32_t> order)
    : pager_(pager), src_(pager), dim_(data.cols()) {
  BREP_CHECK(pager_ != nullptr);
  BREP_CHECK(!data.empty());
  const size_t point_bytes = dim_ * sizeof(double);
  BREP_CHECK_MSG(point_bytes <= pager_->page_size(),
                 "page size too small for one point");
  points_per_page_ = PointsPerPage(pager_->page_size(), dim_);

  const size_t n = data.rows();
  std::vector<uint32_t> layout;
  if (order.empty()) {
    layout.resize(n);
    for (size_t i = 0; i < n; ++i) layout[i] = static_cast<uint32_t>(i);
  } else {
    BREP_CHECK(order.size() == n);
    layout.assign(order.begin(), order.end());
  }

  address_of_.Resize(n);
  std::vector<uint8_t> page_bytes(pager_->page_size(), 0);
  size_t slot = 0;
  PageId current = kInvalidPageId;
  auto flush = [&]() {
    if (current != kInvalidPageId && slot > 0) {
      pager_->Write(current, page_bytes);
    }
  };
  for (size_t i = 0; i < n; ++i) {
    if (slot == 0) {
      current = pager_->Allocate();
      page_index_of_[current] = static_cast<uint32_t>(data_pages_.size());
      data_pages_.push_back(current);
      page_slots_.emplace_back(points_per_page_, kNoPoint);
      page_live_.push_back(0);
      std::fill(page_bytes.begin(), page_bytes.end(), 0);
    }
    const uint32_t id = layout[i];
    const auto row = data.Row(id);
    std::memcpy(page_bytes.data() + slot * point_bytes, row.data(),
                point_bytes);
    address_of_.Set(id, PointAddress{current, static_cast<uint16_t>(slot)});
    page_slots_.back()[slot] = id;
    ++page_live_.back();
    if (++slot == points_per_page_) {
      pager_->Write(current, page_bytes);
      slot = 0;
    }
  }
  flush();
  live_ = n;
  // The last page's unfilled tail is free for later Appends (highest slot
  // popped last so appends fill the page front to back).
  if (slot > 0) {
    const auto pi = static_cast<uint32_t>(data_pages_.size() - 1);
    for (size_t s = points_per_page_; s-- > slot;) {
      free_slots_.push_back(SlotRef{pi, static_cast<uint16_t>(s)});
    }
  }
}

PointStore::PointStore(Pager* pager, const PointStoreLayout& layout)
    : pager_(pager), src_(pager), dim_(layout.dim) {
  BREP_CHECK(pager_ != nullptr);
  BREP_CHECK(dim_ > 0);
  const size_t point_bytes = dim_ * sizeof(double);
  BREP_CHECK_MSG(point_bytes <= pager_->page_size(),
                 "page size too small for one point");
  points_per_page_ = PointsPerPage(pager_->page_size(), dim_);

  const size_t pages = layout.data_pages.size();
  BREP_CHECK_MSG(layout.slots.size() == pages * points_per_page_,
                 "point-store layout slot count mismatch");
  BREP_CHECK(layout.id_space > 0);

  data_pages_ = layout.data_pages;
  address_of_.Resize(layout.id_space);  // default PointAddress = not stored
  page_slots_.resize(pages);
  page_live_.assign(pages, 0);
  for (size_t pi = 0; pi < pages; ++pi) {
    const PageId page_id = data_pages_[pi];
    auto& slots = page_slots_[pi];
    slots.assign(points_per_page_, kNoPoint);
    if (page_id == kInvalidPageId) {  // freed page: all slots dead
      retired_entries_.push_back(static_cast<uint32_t>(pi));
      continue;
    }
    BREP_CHECK(page_id < pager_->num_pages());
    page_index_of_[page_id] = static_cast<uint32_t>(pi);
    for (size_t s = 0; s < points_per_page_; ++s) {
      const uint32_t id = layout.slots[pi * points_per_page_ + s];
      if (id == kNoPoint) {
        free_slots_.push_back(
            SlotRef{static_cast<uint32_t>(pi), static_cast<uint16_t>(s)});
        continue;
      }
      BREP_CHECK(id < layout.id_space);
      BREP_CHECK(address_of_[id].page == kInvalidPageId);  // no duplicates
      slots[s] = id;
      address_of_.Set(id, PointAddress{page_id, static_cast<uint16_t>(s)});
      ++page_live_[pi];
      ++live_;
    }
  }
}

PointStore::PointStore(const PageSource* src, size_t dim,
                       size_t points_per_page, size_t live,
                       CowVec<PointAddress> address_of)
    : pager_(nullptr),
      src_(src),
      dim_(dim),
      points_per_page_(points_per_page),
      live_(live),
      address_of_(std::move(address_of)) {}

std::unique_ptr<PointStore> PointStore::SnapshotClone(
    const PageSource* src) const {
  BREP_CHECK(src != nullptr);
  return std::unique_ptr<PointStore>(
      new PointStore(src, dim_, points_per_page_, live_, address_of_));
}

PointStoreLayout PointStore::layout() const {
  PointStoreLayout layout;
  layout.dim = dim_;
  layout.id_space = address_of_.size();
  layout.data_pages = data_pages_;
  layout.slots.reserve(data_pages_.size() * points_per_page_);
  for (const auto& slots : page_slots_) {
    layout.slots.insert(layout.slots.end(), slots.begin(), slots.end());
  }
  return layout;
}

void PointStore::AddPage() {
  const PageId page = pager_->Allocate();
  uint32_t pi;
  if (!retired_entries_.empty()) {
    // Reclaim a retired slot-table entry (its slots are all kNoPoint).
    pi = retired_entries_.back();
    retired_entries_.pop_back();
    data_pages_[pi] = page;
  } else {
    pi = static_cast<uint32_t>(data_pages_.size());
    data_pages_.push_back(page);
    page_slots_.emplace_back(points_per_page_, kNoPoint);
    page_live_.push_back(0);
  }
  page_index_of_[page] = pi;
  for (size_t s = points_per_page_; s-- > 0;) {
    free_slots_.push_back(SlotRef{pi, static_cast<uint16_t>(s)});
  }
}

void PointStore::WriteSlot(uint32_t page_index, uint16_t slot,
                           std::span<const double> x) {
  PageBuffer buf;
  pager_->Read(data_pages_[page_index], &buf);
  std::memcpy(buf.data() + size_t{slot} * dim_ * sizeof(double), x.data(),
              dim_ * sizeof(double));
  pager_->Write(data_pages_[page_index], buf);
}

void PointStore::Append(uint32_t id, std::span<const double> x) {
  BREP_CHECK(x.size() == dim_);
  if (id == address_of_.size()) {
    address_of_.PushBack(PointAddress{});
  } else {
    BREP_CHECK_MSG(id < address_of_.size() &&
                       address_of_[id].page == kInvalidPageId,
                   "Append requires a fresh or tombstoned id");
  }
  if (free_slots_.empty()) AddPage();
  const SlotRef ref = free_slots_.back();
  free_slots_.pop_back();
  WriteSlot(ref.page_index, ref.slot, x);
  page_slots_[ref.page_index][ref.slot] = id;
  ++page_live_[ref.page_index];
  address_of_.Set(id, PointAddress{data_pages_[ref.page_index], ref.slot});
  ++live_;
}

void PointStore::Remove(uint32_t id) {
  BREP_CHECK_MSG(Contains(id), "Remove of an id that is not stored");
  const PointAddress addr = address_of_[id];
  const uint32_t pi = page_index_of_.at(addr.page);
  address_of_.Set(id, PointAddress{});
  page_slots_[pi][addr.slot] = kNoPoint;
  --page_live_[pi];
  --live_;
  if (page_live_[pi] == 0) {
    // Last point gone: return the whole page to the pager's free-list and
    // retire its slots (they are no longer backed by a page).
    std::erase_if(free_slots_,
                  [pi](const SlotRef& s) { return s.page_index == pi; });
    pager_->Free(addr.page);
    page_index_of_.erase(addr.page);
    data_pages_[pi] = kInvalidPageId;
    retired_entries_.push_back(pi);
  } else {
    free_slots_.push_back(SlotRef{pi, addr.slot});
  }
}

void PointStore::Fetch(uint32_t id, std::span<double> out) const {
  BREP_CHECK_MSG(Contains(id), "Fetch of an id that is not stored");
  BREP_CHECK(out.size() == dim_);
  const PointAddress addr = address_of_[id];
  PageBuffer buf;
  src_->FetchPage(addr.page, &buf);
  std::memcpy(out.data(), buf.data() + addr.slot * dim_ * sizeof(double),
              dim_ * sizeof(double));
}

void PointStore::FetchMany(
    std::span<const uint32_t> ids,
    const std::function<void(uint32_t, std::span<const double>)>& cb) const {
  // Group requested ids by page, then read each page once in ascending
  // order (a real engine would sort candidate addresses the same way).
  std::vector<uint32_t> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end(), [&](uint32_t a, uint32_t b) {
    const PointAddress pa = address_of_[a];
    const PointAddress pb = address_of_[b];
    if (pa.page != pb.page) return pa.page < pb.page;
    return pa.slot < pb.slot;
  });
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  PageBuffer buf;
  PageId loaded = kInvalidPageId;
  for (uint32_t id : sorted) {
    BREP_CHECK_MSG(Contains(id), "FetchMany of an id that is not stored");
    const PointAddress addr = address_of_[id];
    if (addr.page != loaded) {
      src_->FetchPage(addr.page, &buf);
      loaded = addr.page;
    }
    const auto* doubles = reinterpret_cast<const double*>(
        buf.data() + addr.slot * dim_ * sizeof(double));
    cb(id, std::span<const double>(doubles, dim_));
  }
}

size_t PointStore::CountDistinctPages(std::span<const uint32_t> ids) const {
  std::vector<PageId> pages;
  pages.reserve(ids.size());
  for (uint32_t id : ids) pages.push_back(address_of_[id].page);
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  return pages.size();
}

std::vector<PageId> PointStore::LivePages() const {
  std::vector<PageId> pages;
  pages.reserve(page_index_of_.size());
  for (PageId id : data_pages_) {
    if (id != kInvalidPageId) pages.push_back(id);
  }
  return pages;
}

void PointStore::DebugCheckInvariants() const {
  size_t live = 0;
  for (uint32_t id = 0; id < address_of_.size(); ++id) {
    const PointAddress addr = address_of_[id];
    if (addr.page == kInvalidPageId) continue;
    ++live;
    const auto it = page_index_of_.find(addr.page);
    BREP_CHECK_MSG(it != page_index_of_.end(),
                   "live point addresses a page the store does not own");
    BREP_CHECK_MSG(addr.slot < points_per_page_ &&
                       page_slots_[it->second][addr.slot] == id,
                   "slot table and address table disagree");
  }
  BREP_CHECK_MSG(live == live_, "live-point count drifted");

  size_t free_expected = 0;
  for (size_t pi = 0; pi < data_pages_.size(); ++pi) {
    size_t page_live = 0, page_free = 0;
    for (uint32_t id : page_slots_[pi]) {
      (id == kNoPoint ? page_free : page_live) += 1;
    }
    BREP_CHECK_MSG(page_live == page_live_[pi], "per-page live count drifted");
    if (data_pages_[pi] == kInvalidPageId) {
      BREP_CHECK_MSG(page_live == 0, "freed page still holds live slots");
    } else {
      BREP_CHECK_MSG(page_live > 0, "owned page holds no live point");
      BREP_CHECK_MSG(data_pages_[pi] < pager_->num_pages(),
                     "owned page out of pager range");
      free_expected += page_free;
    }
  }
  BREP_CHECK_MSG(free_slots_.size() == free_expected,
                 "free-slot pool out of sync with slot tables");
  for (const SlotRef& s : free_slots_) {
    BREP_CHECK_MSG(s.page_index < data_pages_.size() &&
                       data_pages_[s.page_index] != kInvalidPageId &&
                       page_slots_[s.page_index][s.slot] == kNoPoint,
                   "free-slot pool references an occupied or freed slot");
  }
  size_t invalid_entries = 0;
  for (PageId id : data_pages_) invalid_entries += id == kInvalidPageId;
  BREP_CHECK_MSG(retired_entries_.size() == invalid_entries,
                 "retired-entry pool out of sync with the page table");
  for (uint32_t pi : retired_entries_) {
    BREP_CHECK_MSG(pi < data_pages_.size() &&
                       data_pages_[pi] == kInvalidPageId,
                   "retired-entry pool references a live page entry");
  }
}

}  // namespace brep
