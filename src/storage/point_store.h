#ifndef BREP_STORAGE_POINT_STORE_H_
#define BREP_STORAGE_POINT_STORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dataset/matrix.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace brep {

/// Disk location of one point: page + slot within the page.
struct PointAddress {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  friend bool operator==(const PointAddress& a, const PointAddress& b) {
    return a.page == b.page && a.slot == b.slot;
  }
};

/// Serializable description of a point store's on-disk placement: enough to
/// re-attach to the same pages with zero writes (see the attach constructor).
struct PointStoreLayout {
  uint64_t dim = 0;
  /// Data pages in layout order.
  std::vector<PageId> data_pages;
  /// Point ids in slot order (the layout permutation), page after page.
  std::vector<uint32_t> order;
};

/// Stores the full-dimensional data points on the disk, packed in a
/// caller-chosen order.
///
/// The order is the paper's key I/O lever (Section 6): the BB-forest stores
/// points in the leaf order of one of the trees, so PCCP-similar clusters in
/// other subspaces index mostly the same pages, and candidate refinement
/// touches few distinct pages. `FetchMany` reads each distinct page exactly
/// once, which is what a real engine would do after sorting candidate
/// addresses.
class PointStore {
 public:
  /// Lay out `data` on `pager` with row `order[i]` placed in the i-th slot.
  /// `order` must be a permutation of [0, data.rows()); empty means identity.
  PointStore(Pager* pager, const Matrix& data,
             std::span<const uint32_t> order);

  /// Re-attach to pages previously laid out by the writing constructor
  /// (described by `layout()` of the original store). Performs no pager
  /// writes: only the in-memory address tables are rebuilt.
  PointStore(Pager* pager, const PointStoreLayout& layout);

  /// The placement description to persist for a later re-attach.
  PointStoreLayout layout() const;

  /// Points packed per page for this geometry. Capped at 2^16 (the slot
  /// field of PointAddress is 16 bits): a 1 GB page with 2-d points would
  /// otherwise silently wrap slot numbers and address the wrong points.
  static size_t PointsPerPage(size_t page_size, size_t dim) {
    return std::min<size_t>(page_size / (dim * sizeof(double)),
                            size_t{1} << 16);
  }

  size_t dim() const { return dim_; }
  size_t num_points() const { return address_of_.size(); }
  size_t points_per_page() const { return points_per_page_; }
  size_t num_data_pages() const { return data_pages_.size(); }

  PointAddress AddressOf(uint32_t id) const { return address_of_[id]; }

  /// Read one point (charges a read of its page).
  void Fetch(uint32_t id, std::span<double> out) const;

  /// Fetch a batch: distinct pages are read once each, in ascending page
  /// order; `cb` is invoked once per requested id (duplicates in `ids` are
  /// collapsed). This is the refinement step's I/O pattern.
  void FetchMany(std::span<const uint32_t> ids,
                 const std::function<void(uint32_t, std::span<const double>)>&
                     cb) const;

  /// Number of distinct pages a batch would touch (the per-query I/O cost of
  /// refinement, without actually fetching).
  size_t CountDistinctPages(std::span<const uint32_t> ids) const;

 private:
  Pager* pager_;
  size_t dim_;
  size_t points_per_page_;
  std::vector<PointAddress> address_of_;        // by point id
  std::vector<PageId> data_pages_;              // in layout order
  std::vector<std::vector<uint32_t>> page_ids_;  // page index -> ids by slot
};

}  // namespace brep

#endif  // BREP_STORAGE_POINT_STORE_H_
