#ifndef BREP_STORAGE_POINT_STORE_H_
#define BREP_STORAGE_POINT_STORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/cow_vec.h"
#include "dataset/matrix.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace brep {

/// Disk location of one point: page + slot within the page.
struct PointAddress {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  friend bool operator==(const PointAddress& a, const PointAddress& b) {
    return a.page == b.page && a.slot == b.slot;
  }
};

/// Serializable description of a point store's on-disk placement: enough to
/// re-attach to the same pages with zero writes (see the attach constructor).
/// `slots` has data_pages.size() * points_per_page entries, page-major: the
/// id stored in that slot, or kNoPoint for an empty (never-filled or
/// tombstoned) slot. `data_pages` entries freed back to the pager are
/// kInvalidPageId (all their slots are kNoPoint).
struct PointStoreLayout {
  uint64_t dim = 0;
  /// Size of the id space: ids in [0, id_space) either occupy a slot or are
  /// tombstoned (deleted, available for reuse by the layer above).
  uint64_t id_space = 0;
  std::vector<PageId> data_pages;
  std::vector<uint32_t> slots;
};

/// Stores the full-dimensional data points on the disk, packed in a
/// caller-chosen order.
///
/// The order is the paper's key I/O lever (Section 6): the BB-forest stores
/// points in the leaf order of one of the trees, so PCCP-similar clusters in
/// other subspaces index mostly the same pages, and candidate refinement
/// touches few distinct pages. `FetchMany` reads each distinct page exactly
/// once, which is what a real engine would do after sorting candidate
/// addresses.
///
/// The store is mutable: `Append` places a new (or re-used) id into a free
/// slot -- tombstoned slots first, then the tail of the last page, growing
/// by one pager page (which Allocate serves from the free-list when
/// possible) only when every slot is occupied. `Remove` tombstones a slot
/// and returns a fully emptied page to the pager's free-list, so the file
/// does not grow monotonically under insert/delete churn.
class PointStore {
 public:
  /// Sentinel in PointStoreLayout::slots / the slot tables: no point here.
  static constexpr uint32_t kNoPoint = UINT32_MAX;

  /// Lay out `data` on `pager` with row `order[i]` placed in the i-th slot.
  /// `order` must be a permutation of [0, data.rows()); empty means identity.
  PointStore(Pager* pager, const Matrix& data,
             std::span<const uint32_t> order);

  /// Re-attach to pages previously laid out by the writing constructor or
  /// mutated by Append/Remove (described by `layout()` of the original
  /// store). Performs no pager writes: only the in-memory address tables
  /// are rebuilt.
  PointStore(Pager* pager, const PointStoreLayout& layout);

  /// Read-only clone bound to an MVCC snapshot: shares the (COW) address
  /// table chunks with this store and fetches pages through `src`, which
  /// must outlive the clone. Cheap -- O(address table / CowVec chunk).
  /// Clones serve Fetch/FetchMany/Contains/CountDistinctPages; any mutating
  /// or writer-side call on a clone aborts.
  std::unique_ptr<PointStore> SnapshotClone(const PageSource* src) const;

  /// The placement description to persist for a later re-attach.
  PointStoreLayout layout() const;

  /// Points packed per page for this geometry. Capped at 2^16 (the slot
  /// field of PointAddress is 16 bits): a 1 GB page with 2-d points would
  /// otherwise silently wrap slot numbers and address the wrong points.
  static size_t PointsPerPage(size_t page_size, size_t dim) {
    return std::min<size_t>(page_size / (dim * sizeof(double)),
                            size_t{1} << 16);
  }

  size_t dim() const { return dim_; }
  /// Number of live (non-tombstoned) points.
  size_t num_points() const { return live_; }
  /// Size of the id space (max id ever stored + 1; tombstoned ids count).
  size_t id_space() const { return address_of_.size(); }
  size_t points_per_page() const { return points_per_page_; }
  /// Data pages currently owned (freed pages excluded).
  size_t num_data_pages() const { return page_index_of_.size(); }

  /// Whether `id` is live (stored, not tombstoned).
  bool Contains(uint32_t id) const {
    return id < address_of_.size() &&
           address_of_[id].page != kInvalidPageId;
  }

  PointAddress AddressOf(uint32_t id) const { return address_of_[id]; }

  /// Store `x` under `id`: either the next fresh id (== id_space()) or a
  /// tombstoned id being reused. Costs one page read-modify-write (plus a
  /// page allocation when no free slot exists).
  void Append(uint32_t id, std::span<const double> x);

  /// Tombstone a live point. A page whose last point is removed is returned
  /// to the pager's free-list.
  void Remove(uint32_t id);

  /// Read one live point (charges a read of its page).
  void Fetch(uint32_t id, std::span<double> out) const;

  /// Fetch a batch: distinct pages are read once each, in ascending page
  /// order; `cb` is invoked once per requested id (duplicates in `ids` are
  /// collapsed). This is the refinement step's I/O pattern.
  void FetchMany(std::span<const uint32_t> ids,
                 const std::function<void(uint32_t, std::span<const double>)>&
                     cb) const;

  /// Number of distinct pages a batch would touch (the per-query I/O cost of
  /// refinement, without actually fetching).
  size_t CountDistinctPages(std::span<const uint32_t> ids) const;

  /// Pages currently referenced (for partition-level page accounting).
  std::vector<PageId> LivePages() const;

  /// Structural self-check: address table, slot tables, per-page live
  /// counts and the free-slot pool must all agree. Aborts with a message on
  /// violation. Compiled always; called from tests after update batches.
  void DebugCheckInvariants() const;

 private:
  /// A free slot, identified by index into data_pages_ (not PageId, so
  /// freeing a page can drop its slots).
  struct SlotRef {
    uint32_t page_index;
    uint16_t slot;
  };

  /// Append one fresh pager page worth of free slots.
  void AddPage();
  void WriteSlot(uint32_t page_index, uint16_t slot,
                 std::span<const double> x);

  /// Snapshot-clone constructor (see SnapshotClone).
  PointStore(const PageSource* src, size_t dim, size_t points_per_page,
             size_t live, CowVec<PointAddress> address_of);

  Pager* pager_;              // null in snapshot clones (read-only)
  const PageSource* src_;     // where reads fetch pages from
  size_t dim_;
  size_t points_per_page_;
  size_t live_ = 0;
  CowVec<PointAddress> address_of_;              // by point id
  std::vector<PageId> data_pages_;               // slot-table order
  std::vector<std::vector<uint32_t>> page_slots_;  // page idx -> slot -> id
  std::vector<uint32_t> page_live_;              // page idx -> live points
  std::unordered_map<PageId, uint32_t> page_index_of_;
  std::vector<SlotRef> free_slots_;
  /// data_pages_ indices whose page was returned to the pager; AddPage
  /// reclaims these, so churn does not grow the slot table (and with it
  /// every Save's serialized layout) monotonically.
  std::vector<uint32_t> retired_entries_;
};

}  // namespace brep

#endif  // BREP_STORAGE_POINT_STORE_H_
