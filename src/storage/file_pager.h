#ifndef BREP_STORAGE_FILE_PAGER_H_
#define BREP_STORAGE_FILE_PAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/pager.h"

namespace brep {

/// The file-backed storage backend: pages live in a real file behind a
/// fixed-size superblock, so an index built through this pager survives the
/// process and can be re-served by BrePartition::Open with zero rebuild
/// work (the build-once / serve-many life cycle of a production engine).
///
/// File layout:
///
///   [superblock: 4096 bytes]  magic, format version, page size, page
///                             count, catalog reference, free-list head +
///                             count, FNV-1a checksum
///   [page 0][page 1]...       page i at byte 4096 + i * page_size
///
/// Freed pages (Pager::Free) stay in the file as checksummed free-page
/// records chained from the superblock's free-list head; Open() walks and
/// validates the whole chain before trusting it, so a corrupted free-list
/// is a clean open error, never a crash on a later Allocate().
///
/// Reads are positioned (pread) at page-aligned offsets, so any number of
/// threads may Read() concurrently -- the same contract as MemPager.
/// Writes and Allocate() remain build-path single-threaded. CommitCatalog
/// rewrites the superblock and fsyncs, which is the durability point: a
/// file without a committed superblock update since its last writes simply
/// reopens with the previously committed state.
///
/// Open() validates magic, version, checksum and file size, and reports
/// corruption as a clean error string instead of crashing.
class FilePager final : public Pager {
 public:
  /// On-disk format version; bumped on any incompatible layout change.
  /// v2 added the persistent free-list (head + count in the superblock).
  /// v3 appended the WAL durability watermark (catalog durable_lsn).
  /// v4 switched tree-leaf payloads to a column-major (SoA) point layout
  /// for the batched divergence kernels; older files would decode leaf
  /// vectors transposed, so v4 readers reject them instead of serving
  /// silently wrong distances.
  static constexpr uint32_t kFormatVersion = 4;

  /// Count of durability barriers this pager has issued (fsync covers
  /// metadata + data, fdatasync only what reading the data needs). Exposed
  /// so tests can prove every commit point actually reaches the disk
  /// instead of stopping at the page cache.
  struct SyncCounts {
    uint64_t fsyncs = 0;
    uint64_t fdatasyncs = 0;
  };

  /// Create (truncating any existing file) a fresh paged file.
  /// Returns nullptr and sets `*error` on filesystem failure.
  static std::unique_ptr<FilePager> Create(const std::string& path,
                                           size_t page_size_bytes,
                                           std::string* error = nullptr);

  /// Re-attach to an existing paged file, restoring page count and the
  /// committed catalog. Returns nullptr and sets `*error` if the file is
  /// missing, truncated, has a foreign magic, an unsupported version, or a
  /// checksum mismatch. A file that is not writable (immutable artifact,
  /// read-only mount) opens in read-only mode: serving works, writes
  /// abort. Pure readers never touch the file -- the superblock is only
  /// rewritten when pages were allocated/written or a catalog committed.
  static std::unique_ptr<FilePager> Open(const std::string& path,
                                         std::string* error = nullptr);

  ~FilePager() override;

  const std::string& path() const { return path_; }
  bool read_only() const { return !writable_; }

  /// Persist the catalog reference: rewrite the superblock and fsync.
  void CommitCatalog(const CatalogRef& ref) override;

  /// Rewrite the superblock (page count may have grown) and make the file
  /// durable: fdatasync as the data barrier (page contents must reach the
  /// disk before the superblock repoints at them), then a full fsync after
  /// the superblock rewrite.
  void Sync();

  SyncCounts sync_counts() const {
    return SyncCounts{fsyncs_.load(std::memory_order_relaxed),
                      fdatasyncs_.load(std::memory_order_relaxed)};
  }

  /// Real-I/O latency distributions (pread / pwrite / Sync barriers).
  /// Snapshot-safe concurrently with serving; only the FilePager has these
  /// (MemPager does no real I/O, so it honestly reports nothing).
  obs::HistogramSnapshot read_latency() const { return read_ms_.Snapshot(); }
  obs::HistogramSnapshot write_latency() const { return write_ms_.Snapshot(); }
  obs::HistogramSnapshot sync_latency() const { return sync_ms_.Snapshot(); }

  /// fsync the directory containing `file_path`, making a just-renamed
  /// file durable under its new name (rename itself only mutates the
  /// directory, which has its own cache entry). Returns false on failure.
  static bool SyncDirectory(const std::string& file_path);

 protected:
  void DoGrow(size_t new_num_pages) override;
  void DoWrite(PageId id, std::span<const uint8_t> data) override;
  void DoRead(PageId id, uint8_t* out) const override;

 private:
  FilePager(std::string path, int fd, size_t page_size_bytes, bool writable);

  bool WriteSuperblock();
  uint64_t PageOffset(PageId id) const;

  std::string path_;
  int fd_;
  bool writable_;
  bool dirty_ = false;        // un-synced allocations/writes/catalog
  uint64_t grown_pages_ = 0;  // pages the file has capacity for (>= num_pages)
  /// Atomic so a metrics snapshot may read them while Save()/the flusher
  /// is mid-Sync (torn-read audit: plain counters here would race).
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> fdatasyncs_{0};
  /// mutable: DoRead is const (concurrent query reads), and histograms are
  /// internally synchronized.
  mutable obs::LatencyHistogram read_ms_;
  obs::LatencyHistogram write_ms_;
  obs::LatencyHistogram sync_ms_;
  std::vector<uint8_t> scratch_;  // build-path short-write assembly buffer
};

}  // namespace brep

#endif  // BREP_STORAGE_FILE_PAGER_H_
