#ifndef BREP_STORAGE_BUFFER_POOL_H_
#define BREP_STORAGE_BUFFER_POOL_H_

#include <cstddef>
#include <list>
#include <unordered_map>

#include "storage/page.h"
#include "storage/pager.h"

namespace brep {

/// LRU read cache over a Pager.
///
/// Index traversal (BB-forest interior nodes, VA-file headers) goes through a
/// pool so hot metadata is not re-charged on every visit, mirroring an OS
/// page cache; candidate data fetches bypass it (the paper's I/O metric
/// counts those raw). Hit/miss counters expose both views for ablations.
class BufferPool {
 public:
  /// `capacity_pages` is the number of resident pages; must be > 0.
  BufferPool(Pager* pager, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Read through the cache. Returns a reference valid until the next call.
  /// A miss costs one pager read; a hit costs none.
  const PageBuffer& Read(PageId id);

  /// Drop all cached pages (e.g. after out-of-band writes).
  void InvalidateAll();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetStats() { hits_ = misses_ = 0; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    PageId id;
    PageBuffer buffer;
  };

  Pager* pager_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<PageId, std::list<Entry>::iterator> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace brep

#endif  // BREP_STORAGE_BUFFER_POOL_H_
