#ifndef BREP_STORAGE_BUFFER_POOL_H_
#define BREP_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "storage/page.h"
#include "storage/pager.h"

namespace brep {

/// A pinned page: shared ownership of an immutable page image. A pin keeps
/// its bytes alive even after the pool evicts the page, so references into
/// the buffer stay valid for as long as the caller holds the pin.
using PagePin = std::shared_ptr<const PageBuffer>;

/// LRU read cache over a Pager.
///
/// Index traversal (BB-forest interior nodes, VA-file headers) goes through a
/// pool so hot metadata is not re-charged on every visit, mirroring an OS
/// page cache; candidate data fetches bypass it (the paper's I/O metric
/// counts those raw). Hit/miss counters expose both views for ablations.
///
/// The pool is thread-safe: ReadPinned() may be called from any number of
/// threads concurrently (the query engine runs one filter task per subspace
/// tree, and batched queries share each tree's pool). Cached pages are held
/// by shared_ptr, so eviction by one thread never invalidates bytes another
/// thread is still reading through its pin.
///
/// MVCC: entries are keyed by page GENERATION as well as id. A cached page
/// is a hit only when its generation matches what the caller's PageSource
/// (live pager or pinned snapshot) reports, so the writer mutating a page
/// -- or readers on different snapshots sharing one pool -- can never
/// observe each other's version of the bytes through the cache.
class BufferPool {
 public:
  /// `capacity_pages` is the number of resident pages; must be > 0.
  BufferPool(Pager* pager, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Read through the cache and pin the result. A miss costs one pager
  /// read; a hit costs none. Safe to call concurrently.
  PagePin ReadPinned(PageId id);

  /// Same, but fetch through `src` (a pinned PageSnapshot or the live
  /// pager) and hit only on a matching generation. A stale-generation entry
  /// is replaced in place (a version refresh, not an eviction).
  PagePin ReadPinned(PageId id, const PageSource& src);

  /// Single-threaded convenience: read through the cache and return a
  /// reference that is only guaranteed valid until the next call on this
  /// pool (the next miss may evict the page and, with no pin held, free
  /// its bytes). Concurrent callers must use ReadPinned() instead.
  const PageBuffer& Read(PageId id);

  /// Drop one cached page (the write path calls this after mutating a
  /// page, so no reader ever sees a stale image). Outstanding pins keep
  /// their bytes.
  void Invalidate(PageId id);

  /// Drop all cached pages (e.g. after out-of-band writes). Outstanding
  /// pins keep their bytes.
  void InvalidateAll();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Pages pushed out by capacity pressure (a high rate against a low miss
  /// rate means the working set thrashes just above capacity).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    PageId id;
    uint64_t gen;
    PagePin buffer;
  };

  Pager* pager_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used; guarded by mu_
  std::unordered_map<PageId, std::list<Entry>::iterator> entries_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  // Keeps the most recent Read() result alive so the legacy reference
  // contract ("valid until the next call") holds even if that page is
  // evicted by the very next miss.
  PagePin last_read_;
};

}  // namespace brep

#endif  // BREP_STORAGE_BUFFER_POOL_H_
