#ifndef BREP_STORAGE_PAGE_H_
#define BREP_STORAGE_PAGE_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace brep {

/// Identifier of a fixed-size page on the (simulated) disk.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Raw page contents.
using PageBuffer = std::vector<uint8_t>;

/// Counters the evaluation uses as its "I/O cost" metric: number of page
/// reads/writes issued against the simulated disk (see DESIGN.md section 3
/// for why counting pages reproduces the paper's metric exactly).
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;

  IoStats operator-(const IoStats& other) const {
    return {reads - other.reads, writes - other.writes};
  }
};

}  // namespace brep

#endif  // BREP_STORAGE_PAGE_H_
