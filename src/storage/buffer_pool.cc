#include "storage/buffer_pool.h"

#include "common/check.h"

namespace brep {

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages) {
  BREP_CHECK(pager_ != nullptr);
  BREP_CHECK(capacity_ > 0);
}

PagePin BufferPool::ReadPinned(PageId id) { return ReadPinned(id, *pager_); }

PagePin BufferPool::ReadPinned(PageId id, const PageSource& src) {
  const uint64_t gen = src.PageGen(id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it != entries_.end() && it->second->gen == gen) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Move to front (most recently used).
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->buffer;
    }
  }

  // Miss (or stale generation): fetch outside the lock so concurrent
  // misses on distinct pages overlap their reads instead of serializing on
  // the pool.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto page = std::make_shared<PageBuffer>();
  src.FetchPage(id, page.get());

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    if (it->second->gen == gen) {
      // Another thread cached this version while we were reading; adopt the
      // cached copy (our read was charged to the pager regardless).
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->buffer;
    }
    // A different version is resident: refresh it in place. Not an
    // eviction -- capacity did not push anything out.
    it->second->gen = gen;
    it->second->buffer = page;
    lru_.splice(lru_.begin(), lru_, it->second);
    return page;
  }
  if (entries_.size() == capacity_) {
    // Evict the least recently used page; outstanding pins keep its bytes.
    entries_.erase(lru_.back().id);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(Entry{id, gen, page});
  entries_[id] = lru_.begin();
  return page;
}

const PageBuffer& BufferPool::Read(PageId id) {
  last_read_ = ReadPinned(id);
  return *last_read_;
}

void BufferPool::Invalidate(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  lru_.erase(it->second);
  entries_.erase(it);
}

void BufferPool::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
}

}  // namespace brep
