#include "storage/buffer_pool.h"

#include "common/check.h"

namespace brep {

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages) {
  BREP_CHECK(pager_ != nullptr);
  BREP_CHECK(capacity_ > 0);
}

PagePin BufferPool::ReadPinned(PageId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // Move to front (most recently used).
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->buffer;
    }
  }

  // Miss: fetch outside the lock so concurrent misses on distinct pages
  // overlap their pager reads instead of serializing on the pool.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto page = std::make_shared<PageBuffer>();
  pager_->Read(id, page.get());

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    // Another thread cached the page while we were reading; adopt the
    // cached copy (our read was charged to the pager regardless).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->buffer;
  }
  if (entries_.size() == capacity_) {
    // Evict the least recently used page; outstanding pins keep its bytes.
    entries_.erase(lru_.back().id);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(Entry{id, page});
  entries_[id] = lru_.begin();
  return page;
}

const PageBuffer& BufferPool::Read(PageId id) {
  last_read_ = ReadPinned(id);
  return *last_read_;
}

void BufferPool::Invalidate(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  lru_.erase(it->second);
  entries_.erase(it);
}

void BufferPool::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
}

}  // namespace brep
