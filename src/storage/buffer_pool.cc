#include "storage/buffer_pool.h"

#include "common/check.h"

namespace brep {

BufferPool::BufferPool(Pager* pager, size_t capacity_pages)
    : pager_(pager), capacity_(capacity_pages) {
  BREP_CHECK(pager_ != nullptr);
  BREP_CHECK(capacity_ > 0);
}

const PageBuffer& BufferPool::Read(PageId id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    ++hits_;
    // Move to front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->buffer;
  }
  ++misses_;
  if (entries_.size() == capacity_) {
    // Evict the least recently used page.
    entries_.erase(lru_.back().id);
    lru_.pop_back();
  }
  lru_.push_front(Entry{id, PageBuffer{}});
  pager_->Read(id, &lru_.front().buffer);
  entries_[id] = lru_.begin();
  return lru_.front().buffer;
}

void BufferPool::InvalidateAll() {
  lru_.clear();
  entries_.clear();
}

}  // namespace brep
