#include "storage/pager.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace brep {

Pager::Pager(size_t page_size_bytes) : page_size_(page_size_bytes) {
  BREP_CHECK(page_size_ >= 64);
}

PageId Pager::Allocate() {
  pages_.emplace_back(page_size_, 0);
  return static_cast<PageId>(pages_.size() - 1);
}

void Pager::Write(PageId id, std::span<const uint8_t> data) {
  BREP_CHECK(id < pages_.size());
  BREP_CHECK(data.size() <= page_size_);
  PageBuffer& page = pages_[id];
  std::memcpy(page.data(), data.data(), data.size());
  if (data.size() < page_size_) {
    std::memset(page.data() + data.size(), 0, page_size_ - data.size());
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
}

void Pager::Read(PageId id, PageBuffer* out) const {
  BREP_CHECK(id < pages_.size());
  *out = pages_[id];
  reads_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<PageId> Pager::WriteBlob(std::span<const uint8_t> bytes) {
  std::vector<PageId> ids;
  size_t offset = 0;
  while (offset < bytes.size() || ids.empty()) {
    const size_t chunk = std::min(page_size_, bytes.size() - offset);
    const PageId id = Allocate();
    Write(id, bytes.subspan(offset, chunk));
    ids.push_back(id);
    offset += chunk;
    if (chunk == 0) break;  // empty blob still gets one page
  }
  return ids;
}

std::vector<uint8_t> Pager::ReadBlob(std::span<const PageId> ids,
                                     size_t size) const {
  std::vector<uint8_t> bytes;
  bytes.reserve(size);
  PageBuffer buf;
  for (PageId id : ids) {
    Read(id, &buf);
    const size_t want = std::min(page_size_, size - bytes.size());
    bytes.insert(bytes.end(), buf.begin(),
                 buf.begin() + static_cast<ptrdiff_t>(want));
    if (bytes.size() == size) break;
  }
  BREP_CHECK(bytes.size() == size);
  return bytes;
}

}  // namespace brep
