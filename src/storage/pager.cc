#include "storage/pager.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/check.h"
#include "storage/serial.h"

namespace brep {
namespace {

// "BREPFREE" as a little-endian u64: marks a page that is on the free-list.
constexpr uint64_t kFreePageMagic = 0x4545524650455242ull;
// [magic u64][next u32][fnv1a64 over the previous 12 bytes].
constexpr size_t kFreeRecordBytes = 8 + 4 + 8;

void EncodeFreeRecord(uint8_t* out, PageId next) {
  std::memcpy(out, &kFreePageMagic, 8);
  std::memcpy(out + 8, &next, 4);
  const uint64_t sum = Fnv1a64(std::span<const uint8_t>(out, 12));
  std::memcpy(out + 12, &sum, 8);
}

}  // namespace

bool Pager::ParseFreePageRecord(std::span<const uint8_t> page_bytes,
                                PageId* next) {
  if (page_bytes.size() < kFreeRecordBytes) return false;
  const uint8_t* bytes = page_bytes.data();
  uint64_t magic = 0;
  std::memcpy(&magic, bytes, 8);
  if (magic != kFreePageMagic) return false;
  uint64_t stored = 0;
  std::memcpy(&stored, bytes + 12, 8);
  if (stored != Fnv1a64(std::span<const uint8_t>(bytes, 12))) return false;
  std::memcpy(next, bytes + 8, 4);
  return true;
}

Pager::Pager(size_t page_size_bytes) : page_size_(page_size_bytes) {
  BREP_CHECK(page_size_ >= 64);
}

void Pager::set_num_pages(size_t n) {
  num_pages_ = n;
  table_.Resize(n);
}

PageId Pager::GrowRun(size_t n) {
  DoGrow(num_pages_ + n);
  const PageId first = static_cast<PageId>(num_pages_);
  num_pages_ += n;
  table_.Resize(num_pages_);
  return first;
}

PageId Pager::Allocate() {
  if (free_head_ == kInvalidPageId) return GrowRun(1);
  const PageId id = free_head_;
  PageBuffer buf(page_size_);
  ReadNoCount(id, buf.data());
  reads_.fetch_add(1, std::memory_order_relaxed);
  PageId next = kInvalidPageId;
  BREP_CHECK_MSG(ParseFreePageRecord(buf, &next),
                 "corrupted free-list page record");
  BREP_CHECK_MSG(next == kInvalidPageId || next < num_pages_,
                 "corrupted free-list page record (next out of range)");
  free_head_ = next;
  --free_count_;
  Write(id, {});  // Allocate's contract: the page comes back zeroed
  return id;
}

void Pager::Free(PageId id) {
  BREP_CHECK(id < num_pages_);
  std::vector<uint8_t> record(kFreeRecordBytes);
  EncodeFreeRecord(record.data(), free_head_);
  Write(id, record);
  free_head_ = id;
  ++free_count_;
}

std::vector<PageId> Pager::FreePageIds() const {
  std::vector<PageId> ids;
  ids.reserve(free_count_);
  PageBuffer buf;
  PageId cursor = free_head_;
  while (cursor != kInvalidPageId) {
    BREP_CHECK_MSG(cursor < num_pages_, "free-list page out of range");
    BREP_CHECK_MSG(ids.size() < free_count_, "free-list longer than its "
                                             "recorded count (cycle?)");
    ids.push_back(cursor);
    Read(cursor, &buf);
    PageId next = kInvalidPageId;
    BREP_CHECK_MSG(ParseFreePageRecord(buf, &next),
                   "corrupted free-list page record");
    cursor = next;
  }
  BREP_CHECK_MSG(ids.size() == free_count_,
                 "free-list shorter than its recorded count");
  return ids;
}

void Pager::RestoreFreeList(PageId head, uint64_t count) {
  BREP_CHECK((head == kInvalidPageId) == (count == 0));
  BREP_CHECK(head == kInvalidPageId || head < num_pages_);
  free_head_ = head;
  free_count_ = count;
}

void Pager::Write(PageId id, std::span<const uint8_t> data) {
  BREP_CHECK(id < num_pages_);
  BREP_CHECK(data.size() <= page_size_);
  const VersionedPage& cur = table_[id];
  std::shared_ptr<PageBuffer> buf;
  if (cur.data != nullptr && cur.gen > last_snapshot_gen_) {
    // The shadow buffer was created after the last snapshot capture, so no
    // snapshot can reference it: overwrite in place instead of allocating.
    buf = cur.data;
  } else {
    buf = std::make_shared<PageBuffer>(page_size_, 0);
    if (cur.data == nullptr) ++shadow_pages_;
  }
  if (!data.empty()) std::memcpy(buf->data(), data.data(), data.size());
  if (data.size() < page_size_) {
    std::memset(buf->data() + data.size(), 0, page_size_ - data.size());
  }
  table_.Set(id, VersionedPage{std::move(buf), ++next_gen_});
  writes_.fetch_add(1, std::memory_order_relaxed);
}

void Pager::ReadNoCount(PageId id, uint8_t* out) const {
  const VersionedPage& entry = table_[id];
  if (entry.data != nullptr) {
    std::memcpy(out, entry.data->data(), page_size_);
    return;
  }
  DoRead(id, out);
}

void Pager::Read(PageId id, PageBuffer* out) const {
  BREP_CHECK(id < num_pages_);
  out->resize(page_size_);
  ReadNoCount(id, out->data());
  reads_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Pager::PageGen(PageId id) const {
  BREP_CHECK(id < num_pages_);
  return table_[id].gen;
}

void Pager::FlushToBase() {
  for (size_t id = 0; id < num_pages_; ++id) {
    const VersionedPage& entry = table_[id];
    if (entry.data == nullptr) continue;
    DoWrite(static_cast<PageId>(id), *entry.data);
    // Keep the generation: the backend now holds exactly these bytes, so
    // pooled copies stamped with it stay valid (generations never recycle).
    table_.Set(id, VersionedPage{nullptr, entry.gen});
  }
  shadow_pages_ = 0;
}

PageId Pager::AllocateRun(size_t n) {
  if (free_count_ >= n) {
    const std::vector<PageId> chain = FreePageIds();  // head-first order
    std::vector<PageId> sorted = chain;
    std::sort(sorted.begin(), sorted.end());
    // First run of n consecutive ids.
    size_t run_len = 1;
    size_t found_end = sorted.size();  // index of the run's last element
    if (n == 1) {
      found_end = 0;
    } else {
      for (size_t i = 1; i < sorted.size(); ++i) {
        run_len = sorted[i] == sorted[i - 1] + 1 ? run_len + 1 : 1;
        if (run_len >= n) {
          found_end = i;
          break;
        }
      }
    }
    if (found_end < sorted.size()) {
      const PageId first = sorted[found_end] - static_cast<PageId>(n) + 1;
      // Splice the run out of the chain, rewriting only the records whose
      // successor actually changed (the run members are scattered through
      // the chain, so this is O(run) writes, not O(free-list)).
      const auto in_run = [&](PageId id) {
        return id >= first && id < first + n;
      };
      std::vector<PageId> kept;
      kept.reserve(chain.size() - n);
      std::unordered_map<PageId, PageId> old_next;
      old_next.reserve(chain.size());
      for (size_t i = 0; i < chain.size(); ++i) {
        old_next[chain[i]] =
            i + 1 < chain.size() ? chain[i + 1] : kInvalidPageId;
        if (!in_run(chain[i])) kept.push_back(chain[i]);
      }
      std::vector<uint8_t> record(kFreeRecordBytes);
      for (size_t i = 0; i < kept.size(); ++i) {
        const PageId want =
            i + 1 < kept.size() ? kept[i + 1] : kInvalidPageId;
        if (old_next[kept[i]] != want) {
          EncodeFreeRecord(record.data(), want);
          Write(kept[i], record);
        }
      }
      free_head_ = kept.empty() ? kInvalidPageId : kept.front();
      free_count_ = kept.size();
      return first;
    }
  }
  return GrowRun(n);
}

std::vector<PageId> Pager::WriteBlob(std::span<const uint8_t> bytes) {
  const size_t n =
      std::max<size_t>(1, (bytes.size() + page_size_ - 1) / page_size_);
  const PageId first = AllocateRun(n);
  std::vector<PageId> ids(n);
  size_t offset = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t chunk = std::min(page_size_, bytes.size() - offset);
    ids[i] = static_cast<PageId>(first + i);
    Write(ids[i], bytes.subspan(offset, chunk));
    offset += chunk;
  }
  return ids;
}

std::vector<uint8_t> Pager::ReadBlob(std::span<const PageId> ids,
                                     size_t size) const {
  std::vector<uint8_t> bytes;
  bytes.reserve(size);
  PageBuffer buf;
  for (PageId id : ids) {
    Read(id, &buf);
    const size_t want = std::min(page_size_, size - bytes.size());
    bytes.insert(bytes.end(), buf.begin(),
                 buf.begin() + static_cast<ptrdiff_t>(want));
    if (bytes.size() == size) break;
  }
  BREP_CHECK(bytes.size() == size);
  return bytes;
}

void MemPager::DoGrow(size_t new_num_pages) {
  std::lock_guard<std::mutex> lock(mu_);
  while (pages_.size() < new_num_pages) pages_.emplace_back(nullptr);
}

void MemPager::DoWrite(PageId id, std::span<const uint8_t> data) {
  std::unique_ptr<PageBuffer>* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot = &pages_[id];
  }
  // Mutating the page outside the lock is safe: DoWrite is writer-side and
  // the save path drains reader pins before flushing over base pages.
  if (*slot == nullptr) *slot = std::make_unique<PageBuffer>(page_size(), 0);
  PageBuffer& page = **slot;
  if (!data.empty()) std::memcpy(page.data(), data.data(), data.size());
  if (data.size() < page_size()) {
    std::memset(page.data() + data.size(), 0, page_size() - data.size());
  }
}

void MemPager::DoRead(PageId id, uint8_t* out) const {
  const PageBuffer* page = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    page = pages_[id].get();
  }
  if (page == nullptr) {  // never flushed: a grown page reads as zeroes
    std::memset(out, 0, page_size());
    return;
  }
  std::memcpy(out, page->data(), page_size());
}

}  // namespace brep
