#include "storage/pager.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace brep {

Pager::Pager(size_t page_size_bytes) : page_size_(page_size_bytes) {
  BREP_CHECK(page_size_ >= 64);
}

PageId Pager::Allocate() {
  DoGrow(num_pages_ + 1);
  return static_cast<PageId>(num_pages_++);
}

void Pager::Write(PageId id, std::span<const uint8_t> data) {
  BREP_CHECK(id < num_pages_);
  BREP_CHECK(data.size() <= page_size_);
  DoWrite(id, data);
  writes_.fetch_add(1, std::memory_order_relaxed);
}

void Pager::Read(PageId id, PageBuffer* out) const {
  BREP_CHECK(id < num_pages_);
  out->resize(page_size_);
  DoRead(id, out->data());
  reads_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<PageId> Pager::WriteBlob(std::span<const uint8_t> bytes) {
  std::vector<PageId> ids;
  size_t offset = 0;
  while (offset < bytes.size() || ids.empty()) {
    const size_t chunk = std::min(page_size_, bytes.size() - offset);
    const PageId id = Allocate();
    Write(id, bytes.subspan(offset, chunk));
    ids.push_back(id);
    offset += chunk;
    if (chunk == 0) break;  // empty blob still gets one page
  }
  return ids;
}

std::vector<uint8_t> Pager::ReadBlob(std::span<const PageId> ids,
                                     size_t size) const {
  std::vector<uint8_t> bytes;
  bytes.reserve(size);
  PageBuffer buf;
  for (PageId id : ids) {
    Read(id, &buf);
    const size_t want = std::min(page_size_, size - bytes.size());
    bytes.insert(bytes.end(), buf.begin(),
                 buf.begin() + static_cast<ptrdiff_t>(want));
    if (bytes.size() == size) break;
  }
  BREP_CHECK(bytes.size() == size);
  return bytes;
}

void MemPager::DoGrow(size_t new_num_pages) {
  while (pages_.size() < new_num_pages) pages_.emplace_back(page_size(), 0);
}

void MemPager::DoWrite(PageId id, std::span<const uint8_t> data) {
  PageBuffer& page = pages_[id];
  if (!data.empty()) std::memcpy(page.data(), data.data(), data.size());
  if (data.size() < page_size()) {
    std::memset(page.data() + data.size(), 0, page_size() - data.size());
  }
}

void MemPager::DoRead(PageId id, uint8_t* out) const {
  std::memcpy(out, pages_[id].data(), page_size());
}

}  // namespace brep
