#include "storage/file_pager.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/check.h"
#include "common/timer.h"
#include "storage/serial.h"

namespace brep {
namespace {

// "BREPIDX1" as a little-endian u64.
constexpr uint64_t kMagic = 0x3158444950455242ull;
constexpr size_t kSuperblockBytes = 4096;
// Sanity ceiling on the superblock's page size (Table 4 uses 32-128 KB; 1
// GB is far beyond any sane configuration). FNV-1a is not cryptographic, so
// Open must stay within the documented clean-error contract even for a
// checksum-colliding superblock: an absurd page size would otherwise
// overflow the size arithmetic or bad_alloc in the constructor.
constexpr uint64_t kMaxPageSize = uint64_t{1} << 30;

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

bool PreadAll(int fd, uint8_t* out, size_t len, uint64_t offset) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, out + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0 && errno == EINTR) continue;  // interrupted, not failed
    if (n <= 0) return false;  // 0 = truncated file, <0 = I/O error (errno)
    done += static_cast<size_t>(n);
  }
  return true;
}

bool PwriteAll(int fd, const uint8_t* src, size_t len, uint64_t offset) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, src + done, len - done,
                               static_cast<off_t>(offset + done));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

FilePager::FilePager(std::string path, int fd, size_t page_size_bytes,
                     bool writable)
    : Pager(page_size_bytes),
      path_(std::move(path)),
      fd_(fd),
      writable_(writable),
      scratch_(page_size_bytes, 0) {}

FilePager::~FilePager() {
  if (fd_ >= 0) {
    // Push any shadow pages down to the file before the durability checks
    // below (writes land in the COW table first; a clean close must not
    // lose them).
    if (writable_ && ShadowPages() > 0) FlushToBase();
    // Persist un-synced state on clean close; pure readers leave the file
    // untouched (a reader killed mid-write must not be able to tear the
    // superblock of an index it only served). Best-effort fsync so a clean
    // process exit followed by a machine crash still keeps the file --
    // Sync()'s aborting checks have no place in a destructor.
    if (writable_ && dirty_) {
      if (grown_pages_ > num_pages()) {
        // Trim geometric-growth slack so the file ends exactly at the last
        // page (Open validates size against the superblock's page count).
        ::ftruncate(fd_, static_cast<off_t>(kSuperblockBytes +
                                            num_pages() * page_size()));
      }
      if (::fdatasync(fd_) == 0) {
        fdatasyncs_.fetch_add(1, std::memory_order_relaxed);
      }
      WriteSuperblock();
      if (::fsync(fd_) == 0) fsyncs_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd_);
  }
}

uint64_t FilePager::PageOffset(PageId id) const {
  return kSuperblockBytes + static_cast<uint64_t>(id) * page_size();
}

bool FilePager::WriteSuperblock() {
  ByteWriter w;
  w.Value<uint64_t>(kMagic);
  w.Value<uint32_t>(kFormatVersion);
  w.Value<uint64_t>(page_size());
  w.Value<uint64_t>(num_pages());
  w.Value<uint32_t>(catalog().first_page);
  w.Value<uint32_t>(catalog().num_pages);
  w.Value<uint64_t>(catalog().num_bytes);
  w.Value<uint32_t>(free_list_head());
  w.Value<uint64_t>(num_free_pages());
  w.Value<uint64_t>(catalog().durable_lsn);
  w.Value<uint64_t>(Fnv1a64(w.bytes()));
  std::vector<uint8_t> block = w.Take();
  BREP_CHECK(block.size() <= kSuperblockBytes);
  block.resize(kSuperblockBytes, 0);
  return PwriteAll(fd_, block.data(), block.size(), 0);
}

std::unique_ptr<FilePager> FilePager::Create(const std::string& path,
                                             size_t page_size_bytes,
                                             std::string* error) {
  if (page_size_bytes < 64 || page_size_bytes > kMaxPageSize) {
    SetError(error, "page size must be between 64 bytes and 1 GB");
    return nullptr;
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, Errno("cannot create " + path));
    return nullptr;
  }
  std::unique_ptr<FilePager> pager(
      new FilePager(path, fd, page_size_bytes, /*writable=*/true));
  // fsync the initial superblock: a freshly created file must not be able
  // to reopen as garbage after a crash that caught it page-cache-only.
  if (!pager->WriteSuperblock() || ::fsync(fd) != 0) {
    SetError(error, Errno("cannot write superblock of " + path));
    pager.reset();           // close before unlink
    ::unlink(path.c_str());  // no stub left to misdiagnose as corruption
    return nullptr;
  }
  pager->fsyncs_.fetch_add(1, std::memory_order_relaxed);
  return pager;
}

std::unique_ptr<FilePager> FilePager::Open(const std::string& path,
                                           std::string* error) {
  bool writable = true;
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0 && (errno == EACCES || errno == EROFS)) {
    writable = false;
    fd = ::open(path.c_str(), O_RDONLY);
  }
  if (fd < 0) {
    SetError(error, Errno("cannot open " + path));
    return nullptr;
  }
  std::vector<uint8_t> block(kSuperblockBytes);
  errno = 0;
  if (!PreadAll(fd, block.data(), block.size(), 0)) {
    // Distinguish a short file from a real read error so an operator never
    // deletes a healthy index over a transient EIO.
    const std::string msg =
        errno != 0 ? Errno("cannot read superblock of " + path)
                   : path + ": truncated index file (superblock incomplete)";
    ::close(fd);
    SetError(error, msg);
    return nullptr;
  }

  ByteReader r(block);
  const uint64_t magic = r.Value<uint64_t>();
  const uint32_t version = r.Value<uint32_t>();
  const uint64_t page_size = r.Value<uint64_t>();
  const uint64_t num_pages = r.Value<uint64_t>();
  CatalogRef catalog;
  catalog.first_page = r.Value<uint32_t>();
  catalog.num_pages = r.Value<uint32_t>();
  catalog.num_bytes = r.Value<uint64_t>();
  const PageId free_head = r.Value<uint32_t>();
  const uint64_t free_count = r.Value<uint64_t>();
  if (magic != kMagic) {
    ::close(fd);
    SetError(error, path + ": not a BrePartition index file (bad magic)");
    return nullptr;
  }
  // v4 changed the tree-leaf payload layout (row-major -> SoA), so older
  // files cannot be served correctly and are rejected outright.
  if (version != kFormatVersion) {
    ::close(fd);
    SetError(error, path + ": unsupported index format version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kFormatVersion) + ")");
    return nullptr;
  }
  catalog.durable_lsn = r.Value<uint64_t>();
  const size_t checked_bytes = kSuperblockBytes - r.remaining();
  const uint64_t stored_sum = r.Value<uint64_t>();
  const uint64_t computed_sum =
      Fnv1a64(std::span<const uint8_t>(block.data(), checked_bytes));
  if (stored_sum != computed_sum) {
    ::close(fd);
    SetError(error, path + ": superblock checksum mismatch (corrupted file)");
    return nullptr;
  }
  if (page_size < 64 || page_size > kMaxPageSize) {
    ::close(fd);
    SetError(error, path + ": invalid page size in superblock");
    return nullptr;
  }
  // Page ids are 32-bit, and a page count beyond that range could only
  // come from corruption (a sparse file satisfies the size check below
  // cheaply, so the count must be bounded on its own).
  if (num_pages >= kInvalidPageId ||
      num_pages > (UINT64_MAX - kSuperblockBytes) / page_size) {
    ::close(fd);
    SetError(error, path + ": invalid page count in superblock");
    return nullptr;
  }
  struct stat sb{};
  if (::fstat(fd, &sb) != 0) {
    const std::string msg = Errno("fstat failed on " + path);  // before close
    ::close(fd);
    SetError(error, msg);
    return nullptr;
  }
  const uint64_t need = kSuperblockBytes + num_pages * page_size;
  if (static_cast<uint64_t>(sb.st_size) < need) {
    ::close(fd);
    SetError(error, path + ": truncated index file (" +
                        std::to_string(sb.st_size) + " bytes, superblock " +
                        "promises " + std::to_string(need) + ")");
    return nullptr;
  }

  std::unique_ptr<FilePager> pager(
      new FilePager(path, fd, page_size, writable));
  pager->set_num_pages(num_pages);
  pager->grown_pages_ = num_pages;
  if (catalog.num_pages > 0) pager->set_catalog(catalog);

  // Free-list: validate the superblock fields and walk the whole on-disk
  // chain before adopting it. FNV-1a is not cryptographic, so Allocate()
  // must never be the first place a corrupted chain is discovered -- that
  // path aborts, this one reports a clean error.
  if ((free_head == kInvalidPageId) != (free_count == 0) ||
      free_count > num_pages ||
      (free_head != kInvalidPageId && free_head >= num_pages)) {
    SetError(error, path + ": invalid free-list in superblock");
    return nullptr;
  }
  if (free_count > 0) {
    std::vector<bool> seen(num_pages, false);
    PageBuffer buf(page_size);
    PageId cursor = free_head;
    for (uint64_t i = 0; i < free_count; ++i) {
      if (cursor == kInvalidPageId || cursor >= num_pages || seen[cursor]) {
        SetError(error, path + ": corrupted free-list chain");
        return nullptr;
      }
      seen[cursor] = true;
      pager->DoRead(cursor, buf.data());
      PageId next = kInvalidPageId;
      if (!ParseFreePageRecord(buf, &next)) {
        SetError(error, path + ": corrupted free-list page record");
        return nullptr;
      }
      cursor = next;
    }
    if (cursor != kInvalidPageId) {
      SetError(error, path + ": corrupted free-list chain (count mismatch)");
      return nullptr;
    }
    pager->RestoreFreeList(free_head, free_count);
  }
  return pager;
}

void FilePager::CommitCatalog(const CatalogRef& ref) {
  // Writes live in the COW shadow table until flushed; a durable commit
  // point must first put every page the catalog references into the file.
  // (The in-place save path flushes explicitly before committing -- after
  // draining reader pins -- making this a no-op scan there.)
  FlushToBase();
  Pager::CommitCatalog(ref);
  Sync();
}

void FilePager::Sync() {
  if (grown_pages_ > num_pages()) {
    // Trim geometric-growth slack: the synced file ends exactly at its
    // last page (a later Allocate simply grows again).
    BREP_CHECK_MSG(::ftruncate(fd_, static_cast<off_t>(
                                        kSuperblockBytes +
                                        num_pages() * page_size())) == 0,
                   "ftruncate failed");
    grown_pages_ = num_pages();
  }
  // Barrier: page data must be durable before the superblock repoints to
  // it, otherwise a crash between the two writes could leave a committed
  // superblock referencing catalog pages that never reached the disk.
  // fdatasync suffices here -- it covers the data pages plus the metadata
  // needed to read them back (the ftruncate'd size); the timestamps a full
  // fsync would add buy nothing. The superblock rewrite itself stays
  // within the file's first sector (the used prefix is ~64 bytes), which
  // sector-atomic media update in one piece, and the closing fsync makes
  // the commit point durable.
  Timer sync_timer;
  BREP_CHECK_MSG(::fdatasync(fd_) == 0, "fdatasync failed");
  fdatasyncs_.fetch_add(1, std::memory_order_relaxed);
  BREP_CHECK_MSG(WriteSuperblock(), "superblock write failed");
  BREP_CHECK_MSG(::fsync(fd_) == 0, "fsync failed");
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  sync_ms_.Record(sync_timer.ElapsedMillis());
  dirty_ = false;
}

void FilePager::DoGrow(size_t new_num_pages) {
  BREP_CHECK_MSG(writable_, "pager opened read-only");
  dirty_ = true;
  if (new_num_pages <= grown_pages_) return;
  // Grow geometrically so a build issuing one Allocate per page does not
  // pay one ftruncate syscall per page; the destructor trims the slack.
  const uint64_t target =
      std::max<uint64_t>(new_num_pages, std::max<uint64_t>(64, grown_pages_ * 2));
  const off_t size =
      static_cast<off_t>(kSuperblockBytes + target * page_size());
  BREP_CHECK_MSG(::ftruncate(fd_, size) == 0, "ftruncate failed");
  grown_pages_ = target;
}

void FilePager::DoWrite(PageId id, std::span<const uint8_t> data) {
  BREP_CHECK_MSG(writable_, "pager opened read-only");
  dirty_ = true;
  Timer write_timer;
  if (data.size() == page_size()) {  // full page: no assembly copy needed
    BREP_CHECK_MSG(PwriteAll(fd_, data.data(), page_size(), PageOffset(id)),
                   "page write failed");
    write_ms_.Record(write_timer.ElapsedMillis());
    return;
  }
  if (!data.empty()) std::memcpy(scratch_.data(), data.data(), data.size());
  std::memset(scratch_.data() + data.size(), 0, page_size() - data.size());
  BREP_CHECK_MSG(
      PwriteAll(fd_, scratch_.data(), page_size(), PageOffset(id)),
      "page write failed");
  write_ms_.Record(write_timer.ElapsedMillis());
}

void FilePager::DoRead(PageId id, uint8_t* out) const {
  Timer read_timer;
  BREP_CHECK_MSG(PreadAll(fd_, out, page_size(), PageOffset(id)),
                 "page read failed");
  read_ms_.Record(read_timer.ElapsedMillis());
}

bool FilePager::SyncDirectory(const std::string& file_path) {
  const size_t slash = file_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : file_path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace brep
