#ifndef BREP_STORAGE_SNAPSHOT_H_
#define BREP_STORAGE_SNAPSHOT_H_

#include <cstddef>

#include "common/cow_vec.h"
#include "storage/pager.h"

namespace brep {

/// An immutable point-in-time view of a Pager: the storage half of an MVCC
/// read version. Capturing one copies the COW page-table spine (cheap:
/// O(pages / CowVec chunk)) plus the free-list head/count and the catalog;
/// after that, no writer activity on the live pager can change what this
/// snapshot reads -- the writer clones any table chunk the snapshot still
/// shares before mutating it, and the in-place save path drains reader pins
/// before flushing shadow pages over base pages.
///
/// Page fetches are charged to the base pager's read counter, so the
/// paper's I/O-cost metric is identical whether a query reads through the
/// live pager or a snapshot.
///
/// Capture (the constructor) is writer-side: it must run under the writer
/// mutex. FetchPage/PageGen are safe from any number of reader threads.
class PageSnapshot final : public PageSource {
 public:
  /// Capture the pager's current state. Non-const: records the capture
  /// generation so the pager knows which shadow buffers are still private
  /// to its working view.
  explicit PageSnapshot(Pager& pager);

  PageSnapshot(const PageSnapshot&) = delete;
  PageSnapshot& operator=(const PageSnapshot&) = delete;

  void FetchPage(PageId id, PageBuffer* out) const override;
  uint64_t PageGen(PageId id) const override;

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return num_pages_; }
  PageId free_list_head() const { return free_head_; }
  uint64_t num_free_pages() const { return free_count_; }
  const CatalogRef& catalog() const { return catalog_; }

  /// COW shadow pages this snapshot holds in memory (pages written between
  /// the disk's last flush and this capture). Feeds the
  /// brep_snapshot_cow_retained_pages gauge.
  size_t shadow_pages() const { return shadow_pages_; }

 private:
  const Pager* base_;
  size_t page_size_;
  size_t num_pages_;
  PageId free_head_;
  uint64_t free_count_;
  CatalogRef catalog_;
  CowVec<Pager::VersionedPage> table_;
  size_t shadow_pages_;
};

}  // namespace brep

#endif  // BREP_STORAGE_SNAPSHOT_H_
