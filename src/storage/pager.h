#ifndef BREP_STORAGE_PAGER_H_
#define BREP_STORAGE_PAGER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "storage/page.h"

namespace brep {

/// A simulated page-granular disk.
///
/// All disk-resident structures (point store, BB-forest nodes, VA-file
/// approximation array) allocate pages here and perform reads/writes through
/// it, so `stats()` yields exactly the paper's I/O-cost metric. Page size is
/// configurable per dataset (Table 4 uses 32-128 KB).
class Pager {
 public:
  explicit Pager(size_t page_size_bytes);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return pages_.size(); }

  /// Allocate a new zeroed page and return its id.
  PageId Allocate();

  /// Overwrite a page. `data.size()` must not exceed the page size; shorter
  /// writes zero-fill the remainder. Counts one write.
  void Write(PageId id, std::span<const uint8_t> data);

  /// Read a page into `out` (resized to page size). Counts one read.
  void Read(PageId id, PageBuffer* out) const;

  /// Store an arbitrary-length blob across freshly allocated pages; returns
  /// the page ids in order. Counts one write per page.
  std::vector<PageId> WriteBlob(std::span<const uint8_t> bytes);

  /// Read back a blob of `size` bytes spanning `ids`. Counts one read per
  /// page.
  std::vector<uint8_t> ReadBlob(std::span<const PageId> ids,
                                size_t size) const;

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

 private:
  size_t page_size_;
  std::vector<PageBuffer> pages_;
  mutable IoStats stats_;
};

}  // namespace brep

#endif  // BREP_STORAGE_PAGER_H_
