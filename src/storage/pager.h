#ifndef BREP_STORAGE_PAGER_H_
#define BREP_STORAGE_PAGER_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/cow_vec.h"
#include "storage/page.h"

namespace brep {

class PageSnapshot;

/// Reference to the index catalog: the run of pages holding the serialized
/// index superstructure (written by BrePartition::Save, consumed by
/// BrePartition::Open). Catalog pages are allocated with WriteBlob, so they
/// are always a contiguous run.
struct CatalogRef {
  PageId first_page = kInvalidPageId;
  uint32_t num_pages = 0;
  uint64_t num_bytes = 0;
  /// WAL watermark: every logged operation with LSN <= durable_lsn is
  /// already reflected in the committed catalog, so crash recovery replays
  /// only the log suffix past it (and re-replaying an old log against this
  /// state is a no-op). 0 for indexes that never ran under a WAL.
  uint64_t durable_lsn = 0;

  bool valid() const { return first_page != kInvalidPageId; }
};

/// Where page bytes come from on a read path: either the live Pager (the
/// writer's working view) or an immutable PageSnapshot a reader pinned.
/// `PageGen` keys the BufferPool: a cached page is a hit only when its
/// generation matches the source's, so a writer publishing a new page
/// version invalidates stale cache entries without any cross-thread
/// bookkeeping.
class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Read a page into `out` (resized to the page size). Counts one read on
  /// the underlying disk's I/O statistics.
  virtual void FetchPage(PageId id, PageBuffer* out) const = 0;

  /// Monotonic version stamp of the page's current contents in this view.
  virtual uint64_t PageGen(PageId id) const = 0;
};

/// A page-granular disk: the storage backend behind every disk-resident
/// structure (point store, BB-forest nodes, VA-file approximation array,
/// index catalog).
///
/// All reads/writes are page-counted, so `stats()` yields exactly the
/// paper's I/O-cost metric regardless of backend. Page size is configurable
/// per dataset (Table 4 uses 32-128 KB). Two backends exist:
///
///  * MemPager  -- pages in process memory (the original simulated disk;
///    fast, gone at process exit).
///  * FilePager -- pages in a real file behind a versioned, checksummed
///    superblock (see storage/file_pager.h); an index built on it can be
///    reopened by a later process with zero rebuild work.
///
/// MVCC shadow table: Write() never touches the backend in place. It lands
/// in a copy-on-write page table as an immutable heap buffer stamped with a
/// monotonically increasing generation; Read() consults that table before
/// the backend. A PageSnapshot captures the table (an O(table/1024) spine
/// copy) plus the free-list/catalog metadata, giving readers a frozen view
/// that later writes can never perturb. FlushToBase() pushes the shadow
/// pages down into the backend (the save/commit path); the generations
/// survive the flush so cached pages never alias across versions.
///
/// Thread-safety: Allocate()/Write()/Free()/FlushToBase()/CommitCatalog()
/// are writer-side and must be externally serialized (BrePartition's writer
/// mutex). Read()/FetchPage() on the live Pager are writer-side too; readers
/// go through a PageSnapshot, whose FetchPage is safe against any concurrent
/// writer activity except FlushToBase (the in-place save path drains reader
/// pins first -- see BrePartition::SaveLocked).
class Pager : public PageSource {
 public:
  explicit Pager(size_t page_size_bytes);
  ~Pager() override = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return num_pages_; }

  /// Allocate a zeroed page and return its id. Freed pages are reused
  /// first (popped off the persistent free-list, costing one read to fetch
  /// the next-pointer and one write to zero the page); only when the list
  /// is empty does the backing store grow.
  PageId Allocate();

  /// Return a page to the free-list for a later Allocate() to reuse. The
  /// page's contents are replaced by a checksummed free-page record (magic,
  /// next pointer), so the list itself lives on the disk and survives a
  /// Save/Open round trip; the superblock (FilePager) persists only the
  /// head and count.
  void Free(PageId id);

  /// Head of the free-list (kInvalidPageId when empty) and its length.
  PageId free_list_head() const { return free_head_; }
  uint64_t num_free_pages() const { return free_count_; }

  /// Walk the free-list and return every page on it, head first. Aborts
  /// with a message on a corrupted list (bad record checksum, cycle, out of
  /// range) -- this is the invariant-checking view; FilePager::Open
  /// performs the same walk with clean errors before trusting a file.
  std::vector<PageId> FreePageIds() const;

  /// Adopt a free-list restored from persistent state (FilePager::Open) or
  /// carried over by a page-for-page copy of another disk (Index::Save).
  /// The records themselves must already be present in the pages.
  void RestoreFreeList(PageId head, uint64_t count);

  /// Decode the next-pointer of a free-page record from raw page bytes;
  /// false if the bytes are not a valid record (wrong magic or checksum).
  /// Exposed so FilePager::Open can validate a file's free-list chain with
  /// clean errors before adopting it.
  static bool ParseFreePageRecord(std::span<const uint8_t> page_bytes,
                                  PageId* next);

  /// Overwrite a page. `data.size()` must not exceed the page size; shorter
  /// writes zero-fill the remainder. Counts one write. The write lands in
  /// the COW shadow table, not the backend (see FlushToBase).
  void Write(PageId id, std::span<const uint8_t> data);

  /// Read a page into `out` (resized to page size), consulting the shadow
  /// table before the backend. Counts one read.
  void Read(PageId id, PageBuffer* out) const;

  // PageSource: the writer's working view of the disk.
  void FetchPage(PageId id, PageBuffer* out) const override {
    Read(id, out);
  }
  uint64_t PageGen(PageId id) const override;

  /// Push every shadow page down into the backend and drop the in-memory
  /// copies (generations are preserved, so pooled pages stay valid). Called
  /// on the save path after draining reader pins: a reader snapshot taken
  /// BEFORE the pages being flushed were written may read them from the
  /// backend, which this overwrites.
  void FlushToBase();

  /// Pages currently held as in-memory shadow copies (feeds the
  /// brep_snapshot_cow_retained_pages gauge).
  size_t ShadowPages() const { return shadow_pages_; }

  /// Store an arbitrary-length blob across a contiguous run of pages;
  /// returns the page ids in order. Counts one write per page. The run is
  /// carved out of the free-list when it holds enough CONSECUTIVE ids
  /// (CatalogRef addresses the run as first_page + num_pages, so scattered
  /// reused pages would not do) and grown fresh otherwise -- repeated
  /// Save()s therefore recycle the previous catalog run instead of growing
  /// the disk monotonically.
  std::vector<PageId> WriteBlob(std::span<const uint8_t> bytes);

  /// Read back a blob of `size` bytes spanning `ids`. Counts one read per
  /// page.
  std::vector<uint8_t> ReadBlob(std::span<const PageId> ids,
                                size_t size) const;

  /// Durably record `ref` as this disk's index catalog. MemPager keeps it
  /// in memory (same-process reopen, used by tests); FilePager flushes the
  /// shadow table, persists the superblock and syncs, making the index
  /// survive the process.
  virtual void CommitCatalog(const CatalogRef& ref) { catalog_ = ref; }

  /// The committed catalog, if any (check valid()).
  const CatalogRef& catalog() const { return catalog_; }

  /// Snapshot of the counters (reads may be concurrent with queries).
  IoStats stats() const {
    return IoStats{reads_.load(std::memory_order_relaxed),
                   writes_.load(std::memory_order_relaxed)};
  }
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Backend hooks. `DoWrite` receives at most page_size() bytes and must
  /// zero-fill the rest of the page; `DoRead` fills exactly page_size()
  /// bytes; `DoGrow` extends the backing store to `new_num_pages` zeroed
  /// pages. `DoRead` must tolerate concurrent DoRead/DoGrow calls (snapshot
  /// readers fetch base pages while the writer allocates).
  virtual void DoGrow(size_t new_num_pages) = 0;
  virtual void DoWrite(PageId id, std::span<const uint8_t> data) = 0;
  virtual void DoRead(PageId id, uint8_t* out) const = 0;

  /// For backends that restore an existing disk (FilePager::Open).
  void set_num_pages(size_t n);
  void set_catalog(const CatalogRef& ref) { catalog_ = ref; }

 private:
  friend class PageSnapshot;

  /// One shadow-table entry. `data == nullptr` means the page's current
  /// contents live in the backend (as-opened, or flushed there at
  /// generation `gen`); otherwise `data` is the immutable current contents.
  struct VersionedPage {
    std::shared_ptr<PageBuffer> data;
    uint64_t gen = 0;
  };

  /// Table-aware page fetch without touching the read counter (Allocate
  /// counts its free-record read itself).
  void ReadNoCount(PageId id, uint8_t* out) const;

  /// Allocate `n` brand-new consecutive page ids (never from the
  /// free-list); the contiguity is what WriteBlob's callers rely on.
  PageId GrowRun(size_t n);

  /// Allocate `n` consecutive page ids: a run carved out of the free-list
  /// when one exists, a fresh GrowRun otherwise. The returned pages are
  /// NOT zeroed (callers overwrite every page).
  PageId AllocateRun(size_t n);

  size_t page_size_;
  size_t num_pages_ = 0;
  CatalogRef catalog_;
  PageId free_head_ = kInvalidPageId;
  uint64_t free_count_ = 0;
  mutable std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};

  /// COW shadow table, one entry per page. Snapshots copy the spine; the
  /// writer clones any chunk a snapshot still shares before mutating it.
  CowVec<VersionedPage> table_;
  uint64_t next_gen_ = 0;
  /// Highest generation captured by any PageSnapshot: a shadow buffer with
  /// a newer generation is private to the working view, so Write may reuse
  /// it in place instead of allocating a fresh page buffer.
  uint64_t last_snapshot_gen_ = 0;
  size_t shadow_pages_ = 0;
};

/// The in-memory backend: pages in a process-local deque, i.e. the original
/// simulated disk. Benchmarks use it to measure pure I/O counts without
/// filesystem noise; tests use it for fast round trips (and subclass it as
/// a write-count spy to pin down commit-point ordering).
///
/// A deque (of lazily materialized pages) rather than a vector: growth must
/// not move existing pages, because snapshot readers fetch base pages
/// concurrently with the writer allocating. The mutex guards only the
/// container structure -- the per-page buffer is addressed under the lock
/// and copied outside it (element references are growth-stable).
class MemPager : public Pager {
 public:
  explicit MemPager(size_t page_size_bytes) : Pager(page_size_bytes) {}

 protected:
  void DoGrow(size_t new_num_pages) override;
  void DoWrite(PageId id, std::span<const uint8_t> data) override;
  void DoRead(PageId id, uint8_t* out) const override;

 private:
  mutable std::mutex mu_;
  /// nullptr = never flushed, reads as all zeroes (keeps grow O(1) and
  /// avoids doubling memory under the shadow table).
  std::deque<std::unique_ptr<PageBuffer>> pages_;
};

}  // namespace brep

#endif  // BREP_STORAGE_PAGER_H_
