#ifndef BREP_STORAGE_PAGER_H_
#define BREP_STORAGE_PAGER_H_

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "storage/page.h"

namespace brep {

/// Reference to the index catalog: the run of pages holding the serialized
/// index superstructure (written by BrePartition::Save, consumed by
/// BrePartition::Open). Catalog pages are allocated with WriteBlob, so they
/// are always a contiguous run.
struct CatalogRef {
  PageId first_page = kInvalidPageId;
  uint32_t num_pages = 0;
  uint64_t num_bytes = 0;
  /// WAL watermark: every logged operation with LSN <= durable_lsn is
  /// already reflected in the committed catalog, so crash recovery replays
  /// only the log suffix past it (and re-replaying an old log against this
  /// state is a no-op). 0 for indexes that never ran under a WAL.
  uint64_t durable_lsn = 0;

  bool valid() const { return first_page != kInvalidPageId; }
};

/// A page-granular disk: the storage backend behind every disk-resident
/// structure (point store, BB-forest nodes, VA-file approximation array,
/// index catalog).
///
/// All reads/writes are page-counted, so `stats()` yields exactly the
/// paper's I/O-cost metric regardless of backend. Page size is configurable
/// per dataset (Table 4 uses 32-128 KB). Two backends exist:
///
///  * MemPager  -- pages in a process-local vector (the original simulated
///    disk; fast, gone at process exit).
///  * FilePager -- pages in a real file behind a versioned, checksummed
///    superblock (see storage/file_pager.h); an index built on it can be
///    reopened by a later process with zero rebuild work.
///
/// Thread-safety: concurrent Read()s are safe (the I/O counters are atomic
/// and page contents are immutable while queries run); Allocate()/Write()
/// mutate the page table and must not race with readers. That split matches
/// the engine's life cycle -- build single-threaded, then serve reads from
/// many threads.
class Pager {
 public:
  explicit Pager(size_t page_size_bytes);
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return num_pages_; }

  /// Allocate a zeroed page and return its id. Freed pages are reused
  /// first (popped off the persistent free-list, costing one read to fetch
  /// the next-pointer and one write to zero the page); only when the list
  /// is empty does the backing store grow.
  PageId Allocate();

  /// Return a page to the free-list for a later Allocate() to reuse. The
  /// page's contents are replaced by a checksummed free-page record (magic,
  /// next pointer), so the list itself lives on the disk and survives a
  /// Save/Open round trip; the superblock (FilePager) persists only the
  /// head and count.
  void Free(PageId id);

  /// Head of the free-list (kInvalidPageId when empty) and its length.
  PageId free_list_head() const { return free_head_; }
  uint64_t num_free_pages() const { return free_count_; }

  /// Walk the free-list and return every page on it, head first. Aborts
  /// with a message on a corrupted list (bad record checksum, cycle, out of
  /// range) -- this is the invariant-checking view; FilePager::Open
  /// performs the same walk with clean errors before trusting a file.
  std::vector<PageId> FreePageIds() const;

  /// Adopt a free-list restored from persistent state (FilePager::Open) or
  /// carried over by a page-for-page copy of another disk (Index::Save).
  /// The records themselves must already be present in the pages.
  void RestoreFreeList(PageId head, uint64_t count);

  /// Decode the next-pointer of a free-page record from raw page bytes;
  /// false if the bytes are not a valid record (wrong magic or checksum).
  /// Exposed so FilePager::Open can validate a file's free-list chain with
  /// clean errors before adopting it.
  static bool ParseFreePageRecord(std::span<const uint8_t> page_bytes,
                                  PageId* next);

  /// Overwrite a page. `data.size()` must not exceed the page size; shorter
  /// writes zero-fill the remainder. Counts one write.
  void Write(PageId id, std::span<const uint8_t> data);

  /// Read a page into `out` (resized to page size). Counts one read.
  void Read(PageId id, PageBuffer* out) const;

  /// Store an arbitrary-length blob across a contiguous run of pages;
  /// returns the page ids in order. Counts one write per page. The run is
  /// carved out of the free-list when it holds enough CONSECUTIVE ids
  /// (CatalogRef addresses the run as first_page + num_pages, so scattered
  /// reused pages would not do) and grown fresh otherwise -- repeated
  /// Save()s therefore recycle the previous catalog run instead of growing
  /// the disk monotonically.
  std::vector<PageId> WriteBlob(std::span<const uint8_t> bytes);

  /// Read back a blob of `size` bytes spanning `ids`. Counts one read per
  /// page.
  std::vector<uint8_t> ReadBlob(std::span<const PageId> ids,
                                size_t size) const;

  /// Durably record `ref` as this disk's index catalog. MemPager keeps it
  /// in memory (same-process reopen, used by tests); FilePager persists it
  /// in the superblock and syncs, making the index survive the process.
  virtual void CommitCatalog(const CatalogRef& ref) { catalog_ = ref; }

  /// The committed catalog, if any (check valid()).
  const CatalogRef& catalog() const { return catalog_; }

  /// Snapshot of the counters (reads may be concurrent with queries).
  IoStats stats() const {
    return IoStats{reads_.load(std::memory_order_relaxed),
                   writes_.load(std::memory_order_relaxed)};
  }
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Backend hooks. `DoWrite` receives at most page_size() bytes and must
  /// zero-fill the rest of the page; `DoRead` fills exactly page_size()
  /// bytes; `DoGrow` extends the backing store to `new_num_pages` zeroed
  /// pages.
  virtual void DoGrow(size_t new_num_pages) = 0;
  virtual void DoWrite(PageId id, std::span<const uint8_t> data) = 0;
  virtual void DoRead(PageId id, uint8_t* out) const = 0;

  /// For backends that restore an existing disk (FilePager::Open).
  void set_num_pages(size_t n) { num_pages_ = n; }
  void set_catalog(const CatalogRef& ref) { catalog_ = ref; }

 private:
  /// Allocate `n` brand-new consecutive page ids (never from the
  /// free-list); the contiguity is what WriteBlob's callers rely on.
  PageId GrowRun(size_t n);

  /// Allocate `n` consecutive page ids: a run carved out of the free-list
  /// when one exists, a fresh GrowRun otherwise. The returned pages are
  /// NOT zeroed (callers overwrite every page).
  PageId AllocateRun(size_t n);

  size_t page_size_;
  size_t num_pages_ = 0;
  CatalogRef catalog_;
  PageId free_head_ = kInvalidPageId;
  uint64_t free_count_ = 0;
  mutable std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
};

/// The in-memory backend: a vector of pages, i.e. the original simulated
/// disk. Benchmarks use it to measure pure I/O counts without filesystem
/// noise; tests use it for fast round trips (and subclass it as a
/// write-count spy to pin down commit-point ordering).
class MemPager : public Pager {
 public:
  explicit MemPager(size_t page_size_bytes) : Pager(page_size_bytes) {}

 protected:
  void DoGrow(size_t new_num_pages) override;
  void DoWrite(PageId id, std::span<const uint8_t> data) override;
  void DoRead(PageId id, uint8_t* out) const override;

 private:
  std::vector<PageBuffer> pages_;
};

}  // namespace brep

#endif  // BREP_STORAGE_PAGER_H_
