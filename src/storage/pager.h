#ifndef BREP_STORAGE_PAGER_H_
#define BREP_STORAGE_PAGER_H_

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "storage/page.h"

namespace brep {

/// A simulated page-granular disk.
///
/// All disk-resident structures (point store, BB-forest nodes, VA-file
/// approximation array) allocate pages here and perform reads/writes through
/// it, so `stats()` yields exactly the paper's I/O-cost metric. Page size is
/// configurable per dataset (Table 4 uses 32-128 KB).
///
/// Thread-safety: concurrent Read()s are safe (the I/O counters are atomic
/// and page contents are immutable while queries run); Allocate()/Write()
/// mutate the page table and must not race with readers. That split matches
/// the engine's life cycle -- build single-threaded, then serve reads from
/// many threads.
class Pager {
 public:
  explicit Pager(size_t page_size_bytes);

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return pages_.size(); }

  /// Allocate a new zeroed page and return its id.
  PageId Allocate();

  /// Overwrite a page. `data.size()` must not exceed the page size; shorter
  /// writes zero-fill the remainder. Counts one write.
  void Write(PageId id, std::span<const uint8_t> data);

  /// Read a page into `out` (resized to page size). Counts one read.
  void Read(PageId id, PageBuffer* out) const;

  /// Store an arbitrary-length blob across freshly allocated pages; returns
  /// the page ids in order. Counts one write per page.
  std::vector<PageId> WriteBlob(std::span<const uint8_t> bytes);

  /// Read back a blob of `size` bytes spanning `ids`. Counts one read per
  /// page.
  std::vector<uint8_t> ReadBlob(std::span<const PageId> ids,
                                size_t size) const;

  /// Snapshot of the counters (reads may be concurrent with queries).
  IoStats stats() const {
    return IoStats{reads_.load(std::memory_order_relaxed),
                   writes_.load(std::memory_order_relaxed)};
  }
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

 private:
  size_t page_size_;
  std::vector<PageBuffer> pages_;
  mutable std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
};

}  // namespace brep

#endif  // BREP_STORAGE_PAGER_H_
