#ifndef BREP_STORAGE_PAGER_H_
#define BREP_STORAGE_PAGER_H_

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "storage/page.h"

namespace brep {

/// Reference to the index catalog: the run of pages holding the serialized
/// index superstructure (written by BrePartition::Save, consumed by
/// BrePartition::Open). Catalog pages are allocated with WriteBlob, so they
/// are always a contiguous run.
struct CatalogRef {
  PageId first_page = kInvalidPageId;
  uint32_t num_pages = 0;
  uint64_t num_bytes = 0;

  bool valid() const { return first_page != kInvalidPageId; }
};

/// A page-granular disk: the storage backend behind every disk-resident
/// structure (point store, BB-forest nodes, VA-file approximation array,
/// index catalog).
///
/// All reads/writes are page-counted, so `stats()` yields exactly the
/// paper's I/O-cost metric regardless of backend. Page size is configurable
/// per dataset (Table 4 uses 32-128 KB). Two backends exist:
///
///  * MemPager  -- pages in a process-local vector (the original simulated
///    disk; fast, gone at process exit).
///  * FilePager -- pages in a real file behind a versioned, checksummed
///    superblock (see storage/file_pager.h); an index built on it can be
///    reopened by a later process with zero rebuild work.
///
/// Thread-safety: concurrent Read()s are safe (the I/O counters are atomic
/// and page contents are immutable while queries run); Allocate()/Write()
/// mutate the page table and must not race with readers. That split matches
/// the engine's life cycle -- build single-threaded, then serve reads from
/// many threads.
class Pager {
 public:
  explicit Pager(size_t page_size_bytes);
  virtual ~Pager() = default;

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  size_t page_size() const { return page_size_; }
  size_t num_pages() const { return num_pages_; }

  /// Allocate a new zeroed page and return its id.
  PageId Allocate();

  /// Overwrite a page. `data.size()` must not exceed the page size; shorter
  /// writes zero-fill the remainder. Counts one write.
  void Write(PageId id, std::span<const uint8_t> data);

  /// Read a page into `out` (resized to page size). Counts one read.
  void Read(PageId id, PageBuffer* out) const;

  /// Store an arbitrary-length blob across freshly allocated pages; returns
  /// the page ids in order. Counts one write per page.
  std::vector<PageId> WriteBlob(std::span<const uint8_t> bytes);

  /// Read back a blob of `size` bytes spanning `ids`. Counts one read per
  /// page.
  std::vector<uint8_t> ReadBlob(std::span<const PageId> ids,
                                size_t size) const;

  /// Durably record `ref` as this disk's index catalog. MemPager keeps it
  /// in memory (same-process reopen, used by tests); FilePager persists it
  /// in the superblock and syncs, making the index survive the process.
  virtual void CommitCatalog(const CatalogRef& ref) { catalog_ = ref; }

  /// The committed catalog, if any (check valid()).
  const CatalogRef& catalog() const { return catalog_; }

  /// Snapshot of the counters (reads may be concurrent with queries).
  IoStats stats() const {
    return IoStats{reads_.load(std::memory_order_relaxed),
                   writes_.load(std::memory_order_relaxed)};
  }
  void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Backend hooks. `DoWrite` receives at most page_size() bytes and must
  /// zero-fill the rest of the page; `DoRead` fills exactly page_size()
  /// bytes; `DoGrow` extends the backing store to `new_num_pages` zeroed
  /// pages.
  virtual void DoGrow(size_t new_num_pages) = 0;
  virtual void DoWrite(PageId id, std::span<const uint8_t> data) = 0;
  virtual void DoRead(PageId id, uint8_t* out) const = 0;

  /// For backends that restore an existing disk (FilePager::Open).
  void set_num_pages(size_t n) { num_pages_ = n; }
  void set_catalog(const CatalogRef& ref) { catalog_ = ref; }

 private:
  size_t page_size_;
  size_t num_pages_ = 0;
  CatalogRef catalog_;
  mutable std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
};

/// The in-memory backend: a vector of pages, i.e. the original simulated
/// disk. Benchmarks use it to measure pure I/O counts without filesystem
/// noise; tests use it for fast round trips.
class MemPager final : public Pager {
 public:
  explicit MemPager(size_t page_size_bytes) : Pager(page_size_bytes) {}

 protected:
  void DoGrow(size_t new_num_pages) override;
  void DoWrite(PageId id, std::span<const uint8_t> data) override;
  void DoRead(PageId id, uint8_t* out) const override;

 private:
  std::vector<PageBuffer> pages_;
};

}  // namespace brep

#endif  // BREP_STORAGE_PAGER_H_
