#ifndef BREP_STORAGE_SERIAL_H_
#define BREP_STORAGE_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

namespace brep {

/// \file
/// Byte-level serialization helpers for the on-disk formats (FilePager
/// superblock, index catalog). Plain little-endian PODs with length-prefixed
/// strings/vectors; ByteReader never aborts on malformed input -- it sets a
/// sticky failure flag so callers can reject corrupted files with a clean
/// error instead of crashing.

/// FNV-1a 64-bit over a byte range; the checksum used by the superblock and
/// the catalog trailer.
inline uint64_t Fnv1a64(std::span<const uint8_t> bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Append-only byte sink.
class ByteWriter {
 public:
  /// Pre-size the buffer when the final length is known (also sidesteps a
  /// GCC 12 -Wstringop-overflow false positive on the growth path).
  void Reserve(size_t bytes) { buf_.reserve(bytes); }

  void Raw(const void* src, size_t len) {
    const auto* p = static_cast<const uint8_t*>(src);
    buf_.insert(buf_.end(), p, p + len);
  }

  template <typename T>
  void Value(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(&v, sizeof(T));
  }

  void Str(const std::string& s) {
    Value<uint64_t>(s.size());
    Raw(s.data(), s.size());
  }

  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Value<uint64_t>(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential reader with sticky failure: any out-of-bounds read flips
/// ok() to false and yields zero values from then on, so decode loops stay
/// simple and the caller checks ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  bool Raw(void* dst, size_t len) {
    if (!ok_ || len > remaining()) {
      ok_ = false;
      std::memset(dst, 0, len);
      return false;
    }
    std::memcpy(dst, bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  template <typename T>
  T Value() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    Raw(&v, sizeof(T));
    return v;
  }

  std::string Str() {
    const uint64_t len = Value<uint64_t>();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  template <typename T>
  std::vector<T> Vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const uint64_t count = Value<uint64_t>();
    if (!ok_ || count > remaining() / sizeof(T)) {
      ok_ = false;
      return {};
    }
    std::vector<T> v(count);
    if (count > 0) Raw(v.data(), count * sizeof(T));
    return v;
  }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace brep

#endif  // BREP_STORAGE_SERIAL_H_
