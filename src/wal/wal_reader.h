#ifndef BREP_WAL_WAL_READER_H_
#define BREP_WAL_WAL_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/status.h"
#include "wal/wal.h"

/// \file
/// Incremental WAL tailing: the read side of log shipping. A WalReader
/// keeps a byte cursor into a log that another process (or thread) is
/// actively appending to, and each ReadFrom(lsn) call yields every NEW
/// complete record -- distinguishing "the final record is still being
/// written, poll again" from "acknowledged records are damaged, kDataLoss".
/// ReadWal cannot make that distinction: at recovery an incomplete tail is
/// the cut point of a crash and is silently dropped, which is exactly
/// wrong for a live tail (the bytes will complete milliseconds later).
///
/// The byte source is abstracted behind WalTransport so the polling
/// file-tail reader used by ReplicaIndex and `wal_dump --follow` can later
/// be swapped for a socket-shipped stream without touching the cursor
/// logic.

namespace brep {

/// Byte source over a (possibly growing, occasionally reset) log.
/// Implementations must tolerate concurrent appends: a Read that races an
/// in-flight append may observe a partially written suffix, which the
/// reader handles as an incomplete tail.
class WalTransport {
 public:
  virtual ~WalTransport() = default;

  /// Current byte size of the log; kNotFound while the log does not exist
  /// yet (the primary has not created it).
  virtual StatusOr<uint64_t> Size() = 0;

  /// Read up to `max_bytes` starting at `offset` into `*out` (replacing
  /// its contents). Fewer bytes than requested -- including zero -- means
  /// the log currently ends there.
  virtual Status ReadAt(uint64_t offset, size_t max_bytes,
                        std::vector<uint8_t>* out) = 0;

  /// Where the bytes come from, for error messages.
  virtual std::string Describe() const = 0;
};

/// Polling transport over a local WAL file (pread; never holds the file
/// open across calls, so the primary's checkpoint reset -- truncate +
/// rewrite -- is always observed through a fresh descriptor).
std::unique_ptr<WalTransport> MakeFileTailTransport(std::string path);

/// One ReadFrom batch.
struct WalTailChunk {
  /// Complete, validated records with lsn > the requested watermark, in
  /// log order.
  std::vector<WalRecord> records;
  /// The log's current base LSN (its header's checkpoint watermark).
  uint64_t base_lsn = 0;
  /// An incomplete record (or partial header) sits at the tail: an append
  /// or a reset is in flight. Poll again; this is NOT corruption.
  bool tail_pending = false;
  /// The log was reset (checkpoint truncation) since the previous call;
  /// the cursor re-synchronized from the new header.
  bool reset = false;
};

/// Cursor over a live log. Not internally synchronized: one tailing loop
/// per reader. Any kDataLoss return is sticky in effect -- the log is
/// damaged or the reader fell irrecoverably behind -- so callers should
/// stop tailing and re-seed from a fresh checkpoint.
class WalReader {
 public:
  explicit WalReader(std::unique_ptr<WalTransport> transport);

  /// Convenience: a reader polling the WAL file at `path`.
  static WalReader ForFile(std::string path);

  /// Return every complete record currently in the log with lsn >
  /// `from_lsn` that the cursor has not yet yielded. An empty `records`
  /// with tail_pending false simply means nothing new landed.
  ///
  /// Errors: kDataLoss when the log is corrupted mid-stream (checksum
  /// failure with bytes following, malformed contents) or when the log was
  /// reset past `from_lsn` (the primary checkpointed and truncated records
  /// this reader never consumed -- re-open from the new checkpoint);
  /// kNotFound/kInternal from the transport.
  StatusOr<WalTailChunk> ReadFrom(uint64_t from_lsn);

  /// Byte offset of the end of the last fully validated prefix.
  uint64_t offset() const { return offset_; }

 private:
  /// Re-read and validate the header, detecting resets. Returns true when
  /// the chunk should be returned to the caller as-is (log missing or
  /// header still being written).
  StatusOr<bool> SyncHeader(WalTailChunk* chunk);

  std::unique_ptr<WalTransport> transport_;
  bool header_seen_ = false;
  uint64_t base_lsn_ = 0;
  uint64_t offset_ = 0;  // end of the validated prefix
};

}  // namespace brep

#endif  // BREP_WAL_WAL_READER_H_
