#ifndef BREP_WAL_WAL_H_
#define BREP_WAL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/status.h"
#include "obs/metrics.h"

/// \file
/// Write-ahead logging for the dynamic index: an append-only log of
/// checksummed, LSN-stamped, length-prefixed logical redo records. A write
/// is appended (and, depending on the fsync mode, made durable) BEFORE the
/// index structures are touched, so every acknowledged update survives a
/// crash: recovery replays the log suffix past the last checkpoint through
/// the ordinary insert/delete path.
///
/// File layout:
///
///   [header: 28 bytes]   magic, format version, base LSN, FNV-1a checksum
///   [record][record]...  each: u32 payload length, u8 type, u64 LSN,
///                        u32 FNV-1a over those 13 header bytes,
///                        payload, u64 FNV-1a over (type, LSN, payload)
///
/// LSNs are dense (each insert/delete consumes exactly one), which recovery
/// exploits: a duplicated record is skipped idempotently and a gap is
/// reported as corruption instead of silently replaying a wrong prefix.
///
/// Tail semantics on replay, mirroring production logs: a record cut off
/// by a crash mid-append is a torn tail -- the log is cleanly cut there
/// (expected, not an error). A checksum failure that cannot be a torn
/// append is reported as data loss rather than silently dropping records
/// that may have been acknowledged. The separate header checksum is what
/// makes the distinction trustworthy: a record whose extent runs past the
/// end of the file is a tear only if its length field verifies -- a
/// corrupted length that would otherwise swallow acknowledged records to
/// EOF fails the header check and surfaces as data loss instead.

namespace brep {

/// When an appended record is forced to the platter.
enum class FsyncMode : uint8_t {
  /// Never fsync on the write path (the OS flushes when it pleases); only
  /// checkpoints and clean close are durability points.
  kNone = 0,
  /// A background thread fsyncs every group window: an acknowledged write
  /// is durable within at most one window (bounded loss, near-kNone cost).
  kGroup = 1,
  /// fsync before acknowledging every write (zero loss, one sync per op).
  kAlways = 2,
};

const char* FsyncModeName(FsyncMode mode);

/// Record types in the log.
enum class WalRecordType : uint8_t {
  kInsert = 1,      // {id, raw point}: redo of BrePartition::Insert
  kDelete = 2,      // {id}: redo of BrePartition::Delete
  kCheckpoint = 3,  // {lsn}: state up to lsn is durable in the index file
};

/// One decoded log record.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  uint32_t id = 0;             // insert/delete
  uint64_t checkpoint_lsn = 0; // checkpoint
  std::vector<double> point;   // insert
};

/// Everything a scan of the log yields.
struct WalScan {
  /// Header base LSN: the log was last reset after a checkpoint at this
  /// LSN (0 for a log that never saw a checkpoint, or a missing/empty
  /// file).
  uint64_t base_lsn = 0;
  std::vector<WalRecord> records;
  /// Byte offset of the end of the valid prefix; a writer re-attaching to
  /// this log truncates here so a torn tail never precedes new appends.
  uint64_t valid_bytes = 0;
  /// Whether a torn tail (incomplete or checksum-failed final record, or a
  /// partial header) was dropped, and how many bytes it held.
  bool torn_tail = false;
  uint64_t dropped_bytes = 0;
};

/// Scan `path`, validating every record. kNotFound when no file exists
/// (a fresh log); kDataLoss on a foreign/corrupted header or mid-log
/// corruption. A missing, empty, or torn-headered file is NOT an error --
/// that is what a crash during creation or checkpoint reset leaves behind.
StatusOr<WalScan> ReadWal(const std::string& path);

// -------------------------------------------------------------- framing
// The low-level record framing, shared by the strict scan (ReadWal), the
// lenient dump (DumpWal), and the incremental tail reader (wal_reader.h).
// Anything else should go through those higher-level entry points.

/// File header: magic u64 + version u32 + base lsn u64 + FNV-1a u64.
inline constexpr size_t kWalHeaderBytes = 8 + 4 + 8 + 8;
/// Record header: u32 payload length + u8 type + u64 lsn + u32 guard
/// checksum over those 13 bytes.
inline constexpr size_t kWalRecordHeaderBytes = 4 + 1 + 8 + 4;
/// Full framing cost of one record: header + trailing u64 body checksum.
inline constexpr size_t kWalRecordOverhead = kWalRecordHeaderBytes + 8;

/// What scanning one record position yields. The kIncomplete/kCorrupt
/// split is the load-bearing distinction: at recovery an incomplete final
/// record is the cut point of a crash (drop it), while a live tail reader
/// treats the same shape as an append still in flight (retry later).
/// kCorrupt can be neither -- acknowledged records are damaged.
enum class WalStep {
  kRecord,      // *rec decoded, *extent bytes consumed
  kEnd,         // clean end of log
  kIncomplete,  // truncated/zero-filled tail: a crash cut OR an append in
                // flight -- the caller's context decides which
  kCorrupt,     // checksum failure with bytes following (not a torn append)
  kMalformed,   // checksum fine but the contents are not a valid record
};

/// Decode the record starting at `offset` (absolute file offset; the first
/// record sits at kWalHeaderBytes). On kRecord, `*rec` and `*extent` are
/// set; on any other step `*note` says why.
WalStep ParseWalRecordAt(std::span<const uint8_t> bytes, size_t offset,
                         WalRecord* rec, size_t* extent, std::string* note);

/// Header decode: OK with *base_lsn set, or the kDataLoss to report. A
/// file shorter than the header is NOT an error (a crash during creation
/// or checkpoint reset, or a reset caught mid-write by a tail reader);
/// *torn_header is set instead.
Status ParseWalHeader(std::span<const uint8_t> bytes, const std::string& path,
                      uint64_t* base_lsn, bool* torn_header);

/// Print a human-readable listing of `path` -- header fields, then one
/// line per record (offset, LSN, type, payload summary, checksum status),
/// then the tail diagnosis -- without rejecting corrupted logs (this is
/// the debugging view; ReadWal is the strict one). Only an unreadable file
/// is an error.
Status DumpWal(const std::string& path, std::FILE* out);

/// Appender over the log file. Internally synchronized: the index's
/// exclusive update lock serializes appends, but the group-commit flusher
/// thread runs concurrently with them.
///
/// Any I/O failure poisons the writer: the failed Status is returned from
/// then on and nothing further is appended. A partial append must never be
/// followed by a good one (recovery would flag the mid-log garbage as data
/// loss instead of a torn tail), so refusing all further work is the only
/// safe reaction; the caller reopens and recovers.
class WalWriter {
 public:
  struct Stats {
    uint64_t appends = 0;
    uint64_t fsyncs = 0;
    uint64_t appended_bytes = 0;
  };

  /// Attach to the log at `path` for appending. `append_offset` is the end
  /// of the validated prefix (WalScan::valid_bytes); anything past it is
  /// truncated away. An offset before the header (missing/empty/torn file)
  /// creates the file fresh with a header carrying `fresh_base_lsn`. The
  /// first record appended gets LSN `next_lsn`.
  static StatusOr<std::unique_ptr<WalWriter>> Attach(
      const std::string& path, FsyncMode mode, double group_window_ms,
      uint64_t append_offset, uint64_t next_lsn, uint64_t fresh_base_lsn);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Span breakdown of one append, for callers assembling a trace entry:
  /// encode + pwrite, and -- kAlways mode only -- the synchronous fsync
  /// wait before the ack (zero in kGroup/kNone, where syncing is
  /// asynchronous).
  struct AppendTiming {
    double append_ms = 0.0;
    double fsync_ms = 0.0;
  };

  /// Append a redo record; returns its LSN. Durable on return only in
  /// kAlways mode (kGroup: within a group window; kNone: eventually).
  StatusOr<uint64_t> AppendInsert(uint32_t id, std::span<const double> x,
                                  AppendTiming* timing = nullptr);
  StatusOr<uint64_t> AppendDelete(uint32_t id,
                                  AppendTiming* timing = nullptr);

  /// Force everything appended so far to disk now (any mode).
  Status Flush();

  /// Reset the log after the index file durably absorbed everything up to
  /// `lsn`: truncate, write a fresh header with base LSN `lsn` plus a
  /// kCheckpoint{lsn} record, and sync. Replay work from before the
  /// checkpoint drops to zero.
  Status Checkpoint(uint64_t lsn);

  const std::string& path() const { return path_; }
  FsyncMode mode() const { return mode_; }
  /// LSN of the last appended record (0 if none yet this attach).
  uint64_t last_lsn() const;
  /// Highest LSN known to have reached the disk.
  uint64_t durable_lsn() const;
  Stats stats() const;

  /// Latency distributions: Append (encode + pwrite, excluding any fsync
  /// wait) and the fsync barrier itself (each group-commit window's sync in
  /// kGroup mode; every acknowledged write's wait in kAlways). Snapshots
  /// are safe concurrently with appends and the flusher.
  obs::HistogramSnapshot append_latency() const {
    return append_ms_.Snapshot();
  }
  obs::HistogramSnapshot fsync_latency() const { return fsync_ms_.Snapshot(); }

 private:
  WalWriter(std::string path, int fd, FsyncMode mode, double group_window_ms,
            uint64_t offset, uint64_t next_lsn);

  StatusOr<uint64_t> Append(WalRecordType type, std::span<const uint8_t> payload,
                            AppendTiming* timing);
  /// The sync path; caller holds sync_mu_ (NOT mu_): the fdatasync runs
  /// with mu_ released, so appends -- which happen under the index's
  /// exclusive update lock -- never stall behind an in-flight group sync
  /// (and neither do the readers queued behind that lock).
  Status FlushHoldingSyncMu();
  void StartFlusher();

  const std::string path_;
  const FsyncMode mode_;
  const double group_window_ms_;

  /// Serializes sync operations (Flush/Checkpoint vs the flusher) and is
  /// always acquired BEFORE mu_. mu_ guards the writer state and is never
  /// held across a syscall that can block for milliseconds.
  mutable std::mutex sync_mu_;
  mutable std::mutex mu_;
  int fd_ = -1;
  uint64_t offset_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t durable_lsn_ = 0;
  Status failed_;  // sticky first I/O failure
  Stats stats_;
  bool pending_ = false;  // appended bytes not yet synced
  obs::LatencyHistogram append_ms_;  // internally synchronized
  obs::LatencyHistogram fsync_ms_;

  // Group-commit flusher (kGroup only).
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread flusher_;
};

}  // namespace brep

#endif  // BREP_WAL_WAL_H_
