#include "wal/wal_reader.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/check.h"

namespace brep {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// pread-per-call file transport. Descriptors are not cached across calls:
/// the primary's checkpoint reset replaces the file content in place
/// (truncate + rewrite), and a stale descriptor would keep a coherent view
/// of it anyway -- re-opening just keeps the failure modes simple.
class FileTailTransport final : public WalTransport {
 public:
  explicit FileTailTransport(std::string path) : path_(std::move(path)) {}

  StatusOr<uint64_t> Size() override {
    struct stat sb{};
    if (::stat(path_.c_str(), &sb) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound("no WAL file at \"" + path_ + "\"");
      }
      return Status::Internal(Errno("cannot stat WAL \"" + path_ + "\""));
    }
    return static_cast<uint64_t>(sb.st_size);
  }

  Status ReadAt(uint64_t offset, size_t max_bytes,
                std::vector<uint8_t>* out) override {
    out->clear();
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound("no WAL file at \"" + path_ + "\"");
      }
      return Status::Internal(Errno("cannot open WAL \"" + path_ + "\""));
    }
    out->resize(max_bytes);
    size_t done = 0;
    while (done < max_bytes) {
      const ssize_t n = ::pread(fd, out->data() + done, max_bytes - done,
                                static_cast<off_t>(offset + done));
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) {
        const Status s =
            Status::Internal(Errno("cannot read WAL \"" + path_ + "\""));
        ::close(fd);
        out->clear();
        return s;
      }
      if (n == 0) break;  // current end of file
      done += static_cast<size_t>(n);
    }
    ::close(fd);
    out->resize(done);
    return Status::Ok();
  }

  std::string Describe() const override { return path_; }

 private:
  const std::string path_;
};

}  // namespace

std::unique_ptr<WalTransport> MakeFileTailTransport(std::string path) {
  return std::make_unique<FileTailTransport>(std::move(path));
}

WalReader::WalReader(std::unique_ptr<WalTransport> transport)
    : transport_(std::move(transport)) {
  BREP_CHECK(transport_ != nullptr);
}

WalReader WalReader::ForFile(std::string path) {
  return WalReader(MakeFileTailTransport(std::move(path)));
}

StatusOr<bool> WalReader::SyncHeader(WalTailChunk* chunk) {
  auto size = transport_->Size();
  if (!size.ok()) {
    if (size.status().code() == StatusCode::kNotFound) {
      // The primary has not created the log yet (or a reset unlinked it
      // for a moment): nothing to read, nothing wrong.
      chunk->base_lsn = base_lsn_;
      chunk->tail_pending = true;
      return true;
    }
    return size.status();
  }
  std::vector<uint8_t> header;
  BREP_RETURN_IF_ERROR(transport_->ReadAt(0, kWalHeaderBytes, &header));
  uint64_t new_base = 0;
  bool torn_header = false;
  BREP_RETURN_IF_ERROR(ParseWalHeader(header, transport_->Describe(),
                                      &new_base, &torn_header));
  if (torn_header) {
    // A checkpoint reset caught between truncate and the header pwrite:
    // the header will be whole on the next poll.
    chunk->base_lsn = base_lsn_;
    chunk->tail_pending = true;
    return true;
  }
  if (!header_seen_) {
    header_seen_ = true;
    base_lsn_ = new_base;
    offset_ = kWalHeaderBytes;
  } else if (new_base != base_lsn_ || *size < offset_) {
    // The log was reset by a checkpoint: everything the new header's base
    // covers is durable in the primary's index file, so re-synchronizing
    // the cursor to the fresh log loses nothing the caller still needs --
    // unless the base ran PAST the caller, which ReadFrom rejects below.
    chunk->reset = true;
    base_lsn_ = new_base;
    offset_ = kWalHeaderBytes;
  }
  chunk->base_lsn = base_lsn_;
  return false;
}

StatusOr<WalTailChunk> WalReader::ReadFrom(uint64_t from_lsn) {
  WalTailChunk chunk;
  BREP_ASSIGN_OR_RETURN(const bool early, SyncHeader(&chunk));
  if (early) return chunk;
  if (base_lsn_ > from_lsn) {
    return Status::DataLoss(
        "WAL \"" + transport_->Describe() + "\" starts at lsn " +
        std::to_string(base_lsn_) + " but the reader has only consumed up "
        "to lsn " + std::to_string(from_lsn) +
        ": the log was truncated past this reader (re-seed from the "
        "current checkpoint)");
  }

  BREP_ASSIGN_OR_RETURN(const uint64_t size, transport_->Size());
  if (size <= offset_) return chunk;  // nothing new
  std::vector<uint8_t> bytes;
  BREP_RETURN_IF_ERROR(
      transport_->ReadAt(offset_, static_cast<size_t>(size - offset_),
                         &bytes));
  size_t local = 0;  // cursor into `bytes`; file offset is offset_ + local
  for (;;) {
    WalRecord rec;
    size_t extent = 0;
    std::string note;
    const WalStep step = ParseWalRecordAt(bytes, local, &rec, &extent, &note);
    if (step == WalStep::kEnd) break;
    if (step == WalStep::kIncomplete) {
      // The live-tail distinction: these bytes are an append (or reset)
      // still in flight, not a crash scar -- they will complete. Leave the
      // cursor before them and tell the caller to poll again.
      chunk.tail_pending = true;
      break;
    }
    if (step != WalStep::kRecord) {
      // Before declaring a crash scar, rule out a checkpoint reset racing
      // this read: truncate-and-rewrite under a live ReadAt can hand back a
      // stale mix of old and new log bytes that fails its checksum. If the
      // header changed (or the file shrank under the bytes just parsed),
      // drop the suspect read, re-sync the cursor, and report a reset --
      // the next poll reads the fresh log cleanly.
      auto resize = transport_->Size();
      std::vector<uint8_t> header;
      uint64_t new_base = 0;
      bool torn_header = false;
      if (resize.ok() &&
          transport_->ReadAt(0, kWalHeaderBytes, &header).ok() &&
          ParseWalHeader(header, transport_->Describe(), &new_base,
                         &torn_header)
              .ok() &&
          !torn_header &&
          (new_base != base_lsn_ || *resize < offset_ + local + extent)) {
        chunk.records.clear();
        chunk.reset = true;
        base_lsn_ = new_base;
        chunk.base_lsn = new_base;
        offset_ = kWalHeaderBytes;
        return chunk;
      }
      return Status::DataLoss("WAL \"" + transport_->Describe() + "\": " +
                              note + " at offset " +
                              std::to_string(offset_ + local));
    }
    // Checkpoint markers carry the base watermark the header already
    // reports (and their lsn <= from_lsn here), so callers never see them:
    // ReadFrom yields exactly the redo records past the watermark.
    if (rec.type != WalRecordType::kCheckpoint && rec.lsn > from_lsn) {
      chunk.records.push_back(std::move(rec));
    }
    local += extent;
  }
  offset_ += local;
  return chunk;
}

}  // namespace brep
