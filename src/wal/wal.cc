#include "wal/wal.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/check.h"
#include "common/timer.h"
#include "storage/serial.h"

namespace brep {
namespace {

// "BREPWAL1" as a little-endian u64; distinct from the index-file and
// catalog magics so a log handed to the wrong opener fails immediately.
constexpr uint64_t kWalMagic = 0x314C415750455242ull;
constexpr uint32_t kWalVersion = 1;
// The framing sizes are public (wal.h): the incremental reader needs them.
constexpr size_t kHeaderBytes = kWalHeaderBytes;
constexpr size_t kRecordHeaderBytes = kWalRecordHeaderBytes;
constexpr size_t kRecordOverhead = kWalRecordOverhead;

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// fsync the directory holding `file_path`: a freshly created log file is
/// only crash-durable once its directory entry is -- without this, a
/// machine crash can make the whole log vanish while every record in it
/// was dutifully fdatasync'd.
bool SyncWalDirectory(const std::string& file_path) {
  const size_t slash = file_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : file_path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool PwriteAll(int fd, const uint8_t* src, size_t len, uint64_t offset) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, src + done, len - done,
                               static_cast<off_t>(offset + done));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

std::vector<uint8_t> EncodeHeader(uint64_t base_lsn) {
  ByteWriter w;
  w.Reserve(kHeaderBytes);
  w.Value<uint64_t>(kWalMagic);
  w.Value<uint32_t>(kWalVersion);
  w.Value<uint64_t>(base_lsn);
  w.Value<uint64_t>(Fnv1a64(w.bytes()));
  return w.Take();
}

std::vector<uint8_t> EncodeRecord(WalRecordType type, uint64_t lsn,
                                  std::span<const uint8_t> payload) {
  ByteWriter body;  // the body-checksummed region: type, lsn, payload
  body.Reserve(1 + 8 + payload.size());
  body.Value<uint8_t>(static_cast<uint8_t>(type));
  body.Value<uint64_t>(lsn);
  body.Raw(payload.data(), payload.size());
  ByteWriter w;
  w.Reserve(kRecordOverhead + payload.size());
  w.Value<uint32_t>(static_cast<uint32_t>(payload.size()));
  w.Value<uint8_t>(static_cast<uint8_t>(type));
  w.Value<uint64_t>(lsn);
  // Header guard over (length, type, lsn): lets replay TRUST a length
  // field whose extent runs past EOF (a genuine torn append) and refuse
  // one that was corrupted into swallowing later records.
  w.Value<uint32_t>(static_cast<uint32_t>(
      Fnv1a64(std::span<const uint8_t>(w.bytes().data(), 13))));
  w.Raw(payload.data(), payload.size());
  w.Value<uint64_t>(Fnv1a64(body.bytes()));
  return w.Take();
}

}  // namespace

WalStep ParseWalRecordAt(std::span<const uint8_t> bytes, size_t offset,
                         WalRecord* rec, size_t* extent, std::string* note) {
  const size_t remaining = bytes.size() - offset;
  if (remaining == 0) return WalStep::kEnd;
  if (remaining < kRecordHeaderBytes) {
    *note = "incomplete record header";
    return WalStep::kIncomplete;
  }
  // The header guard decides whether the length field may be trusted: a
  // torn append leaves a VALID header with a short payload, while a
  // corrupted length (which could swallow acknowledged records all the
  // way to EOF) fails here and must surface as data loss, not a tear.
  uint32_t stored_header_sum = 0;
  std::memcpy(&stored_header_sum, bytes.data() + offset + 13, 4);
  const uint32_t computed_header_sum = static_cast<uint32_t>(
      Fnv1a64(bytes.subspan(offset, 13)));
  if (stored_header_sum != computed_header_sum) {
    // A complete-but-invalid header cannot come from a torn append (our
    // writer emits the header in one piece) -- except as the zero-filled
    // tail some filesystems leave when size metadata outruns data blocks
    // in a crash. Distinguish exactly that.
    const auto tail = bytes.subspan(offset);
    const bool all_zero =
        std::all_of(tail.begin(), tail.end(), [](uint8_t b) { return b == 0; });
    if (all_zero) {
      *note = "zero-filled tail (crash during append)";
      return WalStep::kIncomplete;
    }
    *note = "record header checksum mismatch";
    return WalStep::kCorrupt;
  }
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, bytes.data() + offset, 4);
  if (payload_len > remaining - kRecordOverhead ||
      remaining < kRecordOverhead) {
    *note = "record extent runs past the end of the file";
    return WalStep::kIncomplete;
  }
  *extent = kRecordOverhead + payload_len;
  ByteWriter body_bytes;  // the body-checksummed region: type, lsn, payload
  body_bytes.Raw(bytes.data() + offset + 4, 1 + 8);
  body_bytes.Raw(bytes.data() + offset + kRecordHeaderBytes, payload_len);
  const std::span<const uint8_t> body(body_bytes.bytes());
  uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, bytes.data() + offset + *extent - 8, 8);
  if (stored_sum != Fnv1a64(body)) {
    if (offset + *extent == bytes.size()) {
      *note = "checksum failed on the final record";
      return WalStep::kIncomplete;
    }
    *note = "record checksum mismatch with records following";
    return WalStep::kCorrupt;
  }
  ByteReader r(body);
  const uint8_t raw_type = r.Value<uint8_t>();
  rec->lsn = r.Value<uint64_t>();
  rec->point.clear();
  switch (raw_type) {
    case static_cast<uint8_t>(WalRecordType::kInsert): {
      rec->type = WalRecordType::kInsert;
      rec->id = r.Value<uint32_t>();
      const uint32_t dim = r.Value<uint32_t>();
      if (!r.ok() || rec->lsn == 0 ||
          uint64_t{dim} * sizeof(double) != r.remaining()) {
        *note = "malformed insert record";
        return WalStep::kMalformed;
      }
      rec->point.resize(dim);
      r.Raw(rec->point.data(), dim * sizeof(double));
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kDelete):
      rec->type = WalRecordType::kDelete;
      rec->id = r.Value<uint32_t>();
      if (!r.ok() || r.remaining() != 0 || rec->lsn == 0) {
        *note = "malformed delete record";
        return WalStep::kMalformed;
      }
      break;
    case static_cast<uint8_t>(WalRecordType::kCheckpoint):
      rec->type = WalRecordType::kCheckpoint;
      rec->checkpoint_lsn = r.Value<uint64_t>();
      if (!r.ok() || r.remaining() != 0) {
        *note = "malformed checkpoint record";
        return WalStep::kMalformed;
      }
      break;
    default:
      *note = "unknown record type " + std::to_string(raw_type);
      return WalStep::kMalformed;
  }
  return WalStep::kRecord;
}

namespace {

/// Slurp the file; kNotFound when it does not exist.
StatusOr<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no WAL file at \"" + path + "\"");
    }
    return Status::Internal(Errno("cannot open WAL \"" + path + "\""));
  }
  struct stat sb{};
  if (::fstat(fd, &sb) != 0) {
    const Status s = Status::Internal(Errno("fstat failed on \"" + path + "\""));
    ::close(fd);
    return s;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(sb.st_size));
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::read(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      const Status s =
          Status::Internal(Errno("cannot read WAL \"" + path + "\""));
      ::close(fd);
      return s;
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return bytes;
}

}  // namespace

Status ParseWalHeader(std::span<const uint8_t> bytes, const std::string& path,
                      uint64_t* base_lsn, bool* torn_header) {
  *torn_header = bytes.size() < kHeaderBytes;
  if (*torn_header) return Status::Ok();
  ByteReader r(bytes.first(kHeaderBytes));
  const uint64_t magic = r.Value<uint64_t>();
  const uint32_t version = r.Value<uint32_t>();
  *base_lsn = r.Value<uint64_t>();
  const uint64_t stored = r.Value<uint64_t>();
  if (magic != kWalMagic) {
    return Status::DataLoss("\"" + path + "\" is not a WAL file (bad magic)");
  }
  if (version != kWalVersion) {
    return Status::DataLoss("\"" + path + "\": unsupported WAL version " +
                            std::to_string(version));
  }
  if (stored != Fnv1a64(bytes.first(kHeaderBytes - 8))) {
    return Status::DataLoss("\"" + path + "\": WAL header checksum mismatch");
  }
  return Status::Ok();
}

const char* FsyncModeName(FsyncMode mode) {
  switch (mode) {
    case FsyncMode::kNone: return "none";
    case FsyncMode::kGroup: return "group";
    case FsyncMode::kAlways: return "always";
  }
  return "?";
}

StatusOr<WalScan> ReadWal(const std::string& path) {
  BREP_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                        ReadFileBytes(path));
  WalScan scan;
  bool torn_header = false;
  BREP_RETURN_IF_ERROR(
      ParseWalHeader(bytes, path, &scan.base_lsn, &torn_header));
  if (torn_header) {
    // Crash during creation or checkpoint reset: an empty (or header-torn)
    // log with nothing to replay. The writer recreates it from scratch.
    scan.base_lsn = 0;
    scan.torn_tail = !bytes.empty();
    scan.dropped_bytes = bytes.size();
    return scan;
  }
  size_t offset = kHeaderBytes;
  for (;;) {
    WalRecord rec;
    size_t extent = 0;
    std::string note;
    const WalStep step = ParseWalRecordAt(bytes, offset, &rec, &extent, &note);
    if (step == WalStep::kEnd) break;
    if (step == WalStep::kIncomplete) {
      scan.torn_tail = true;
      scan.dropped_bytes = bytes.size() - offset;
      break;
    }
    if (step != WalStep::kRecord) {
      return Status::DataLoss("\"" + path + "\": " + note + " at offset " +
                              std::to_string(offset));
    }
    scan.records.push_back(std::move(rec));
    offset += extent;
  }
  scan.valid_bytes = offset;
  return scan;
}

Status DumpWal(const std::string& path, std::FILE* out) {
  BREP_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                        ReadFileBytes(path));
  uint64_t base_lsn = 0;
  bool torn_header = false;
  const Status header = ParseWalHeader(bytes, path, &base_lsn, &torn_header);
  if (torn_header) {
    std::fprintf(out, "%s: %s (%zu bytes); nothing to replay\n", path.c_str(),
                 bytes.empty() ? "empty WAL" : "torn WAL header",
                 bytes.size());
    return Status::Ok();
  }
  if (!header.ok()) {
    std::fprintf(out, "%s\n", header.message().c_str());
    return Status::Ok();  // the dump reported it; only I/O errors escape
  }
  std::fprintf(out, "%s: WAL v%u, base lsn %llu\n", path.c_str(), kWalVersion,
               static_cast<unsigned long long>(base_lsn));
  size_t offset = kHeaderBytes;
  size_t n = 0;
  for (;;) {
    WalRecord rec;
    size_t extent = 0;
    std::string note;
    const WalStep step = ParseWalRecordAt(bytes, offset, &rec, &extent, &note);
    if (step == WalStep::kEnd) {
      std::fprintf(out, "clean end: %zu records, %zu bytes\n", n, offset);
      break;
    }
    if (step == WalStep::kIncomplete) {
      std::fprintf(out, "torn tail at offset %zu (%s; %zu bytes dropped)\n",
                   offset, note.c_str(), bytes.size() - offset);
      break;
    }
    if (step != WalStep::kRecord) {
      std::fprintf(out, "CORRUPT at offset %zu: %s\n", offset, note.c_str());
      break;
    }
    switch (rec.type) {
      case WalRecordType::kInsert:
        std::fprintf(out, "  @%-8zu lsn %-8llu insert  id %-8u dim %zu  crc ok\n",
                     offset, static_cast<unsigned long long>(rec.lsn), rec.id,
                     rec.point.size());
        break;
      case WalRecordType::kDelete:
        std::fprintf(out, "  @%-8zu lsn %-8llu delete  id %-8u        crc ok\n",
                     offset, static_cast<unsigned long long>(rec.lsn), rec.id);
        break;
      case WalRecordType::kCheckpoint:
        std::fprintf(out, "  @%-8zu lsn %-8llu checkpoint at lsn %llu  crc ok\n",
                     offset, static_cast<unsigned long long>(rec.lsn),
                     static_cast<unsigned long long>(rec.checkpoint_lsn));
        break;
    }
    offset += extent;
    ++n;
  }
  return Status::Ok();
}

// ------------------------------------------------------------------------
// WalWriter

WalWriter::WalWriter(std::string path, int fd, FsyncMode mode,
                     double group_window_ms, uint64_t offset,
                     uint64_t next_lsn)
    : path_(std::move(path)),
      mode_(mode),
      group_window_ms_(group_window_ms),
      fd_(fd),
      offset_(offset),
      next_lsn_(next_lsn),
      durable_lsn_(next_lsn - 1) {}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Attach(
    const std::string& path, FsyncMode mode, double group_window_ms,
    uint64_t append_offset, uint64_t next_lsn, uint64_t fresh_base_lsn) {
  BREP_CHECK(next_lsn >= 1);
  if (mode == FsyncMode::kGroup && !(group_window_ms > 0.0)) {
    return Status::InvalidArgument("group_window_ms must be > 0");
  }
  int fd = -1;
  uint64_t offset = 0;
  bool created = false;
  if (append_offset < kHeaderBytes) {
    // Missing, empty, or header-torn log: recreate from scratch.
    fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      return Status::Internal(Errno("cannot create WAL \"" + path + "\""));
    }
    const std::vector<uint8_t> header = EncodeHeader(fresh_base_lsn);
    if (::ftruncate(fd, 0) != 0 ||
        !PwriteAll(fd, header.data(), header.size(), 0) ||
        ::fdatasync(fd) != 0 || !SyncWalDirectory(path)) {
      const Status s =
          Status::Internal(Errno("cannot initialize WAL \"" + path + "\""));
      ::close(fd);
      return s;
    }
    offset = kHeaderBytes;
    created = true;
  } else {
    fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) {
      return Status::Internal(Errno("cannot open WAL \"" + path + "\""));
    }
    // Drop the torn tail so a new append never lands after garbage (replay
    // would then flag mid-log corruption instead of a clean tear).
    if (::ftruncate(fd, static_cast<off_t>(append_offset)) != 0) {
      const Status s =
          Status::Internal(Errno("cannot truncate WAL \"" + path + "\""));
      ::close(fd);
      return s;
    }
    offset = append_offset;
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(path, fd, mode, group_window_ms, offset, next_lsn));
  if (created) writer->stats_.fsyncs = 1;
  if (mode == FsyncMode::kGroup) writer->StartFlusher();
  return writer;
}

WalWriter::~WalWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    // Clean close makes everything appended durable, best-effort (a failure
    // here is indistinguishable from crashing moments later, which the
    // recovery path already handles).
    if (pending_ && failed_.ok() && ::fdatasync(fd_) == 0) {
      ++stats_.fsyncs;
    }
    ::close(fd_);
  }
}

void WalWriter::StartFlusher() {
  flusher_ = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait_for(
            lock, std::chrono::duration<double, std::milli>(group_window_ms_),
            [this] { return stop_; });
        if (stop_) return;
        if (!pending_ || !failed_.ok()) continue;
      }
      std::lock_guard<std::mutex> sync_lock(sync_mu_);
      FlushHoldingSyncMu();  // failures are sticky; nothing to report here
    }
  });
}

Status WalWriter::FlushHoldingSyncMu() {
  int fd = -1;
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    BREP_RETURN_IF_ERROR(failed_);
    if (!pending_) return Status::Ok();
    fd = fd_;
    target = next_lsn_ - 1;
  }
  // The actual barrier runs with mu_ released: an Append (under the
  // index's exclusive update lock) must never queue behind a
  // milliseconds-long fdatasync, or every reader queues with it.
  Timer fsync_timer;
  const bool ok = ::fdatasync(fd) == 0;
  fsync_ms_.Record(fsync_timer.ElapsedMillis());
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok) {
    failed_ = Status::Internal(Errno("WAL fdatasync failed on \"" + path_ +
                                     "\"; writer disabled, reopen to recover"));
    return failed_;
  }
  ++stats_.fsyncs;
  durable_lsn_ = std::max(durable_lsn_, target);
  // Appends that slipped in while the barrier ran are still pending.
  if (next_lsn_ - 1 == target) pending_ = false;
  return Status::Ok();
}

StatusOr<uint64_t> WalWriter::Append(WalRecordType type,
                                     std::span<const uint8_t> payload,
                                     AppendTiming* timing) {
  uint64_t lsn = 0;
  Timer append_timer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    BREP_RETURN_IF_ERROR(failed_);
    lsn = next_lsn_;
    const std::vector<uint8_t> record = EncodeRecord(type, lsn, payload);
    if (!PwriteAll(fd_, record.data(), record.size(), offset_)) {
      // A partial append may be on disk; appending anything after it would
      // turn a recoverable torn tail into mid-log corruption. Poison.
      failed_ =
          Status::Internal(Errno("WAL append failed on \"" + path_ +
                                 "\"; writer disabled, reopen to recover"));
      return failed_;
    }
    offset_ += record.size();
    next_lsn_ = lsn + 1;
    pending_ = true;
    ++stats_.appends;
    stats_.appended_bytes += record.size();
  }
  const double append_elapsed = append_timer.ElapsedMillis();
  append_ms_.Record(append_elapsed);
  if (timing != nullptr) timing->append_ms = append_elapsed;
  if (mode_ == FsyncMode::kAlways) {
    Timer fsync_timer;
    BREP_RETURN_IF_ERROR(Flush());
    if (timing != nullptr) timing->fsync_ms = fsync_timer.ElapsedMillis();
  }
  return lsn;
}

StatusOr<uint64_t> WalWriter::AppendInsert(uint32_t id,
                                           std::span<const double> x,
                                           AppendTiming* timing) {
  ByteWriter payload;
  payload.Value<uint32_t>(id);
  payload.Value<uint32_t>(static_cast<uint32_t>(x.size()));
  payload.Raw(x.data(), x.size() * sizeof(double));
  return Append(WalRecordType::kInsert, payload.bytes(), timing);
}

StatusOr<uint64_t> WalWriter::AppendDelete(uint32_t id, AppendTiming* timing) {
  ByteWriter payload;
  payload.Value<uint32_t>(id);
  return Append(WalRecordType::kDelete, payload.bytes(), timing);
}

Status WalWriter::Flush() {
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  return FlushHoldingSyncMu();
}

Status WalWriter::Checkpoint(uint64_t lsn) {
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  BREP_RETURN_IF_ERROR(failed_);
  BREP_CHECK_MSG(lsn < next_lsn_, "checkpoint beyond the last appended lsn");
  ByteWriter payload;
  payload.Value<uint64_t>(lsn);
  const std::vector<uint8_t> header = EncodeHeader(lsn);
  const std::vector<uint8_t> record =
      EncodeRecord(WalRecordType::kCheckpoint, lsn, payload.bytes());
  // Reset the log: everything up to `lsn` is durable in the index file, so
  // a crash anywhere in this sequence is safe -- a torn or empty log
  // replays nothing, and the superblock watermark skips stale records.
  if (::ftruncate(fd_, 0) != 0 ||
      !PwriteAll(fd_, header.data(), header.size(), 0) ||
      !PwriteAll(fd_, record.data(), record.size(), header.size()) ||
      ::fdatasync(fd_) != 0) {
    failed_ = Status::Internal(Errno("WAL checkpoint reset failed on \"" +
                                     path_ +
                                     "\"; writer disabled, reopen to recover"));
    return failed_;
  }
  offset_ = header.size() + record.size();
  pending_ = false;
  durable_lsn_ = next_lsn_ - 1;
  ++stats_.fsyncs;
  return Status::Ok();
}

uint64_t WalWriter::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - 1;
}

uint64_t WalWriter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

WalWriter::Stats WalWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace brep
