#ifndef BREP_BASELINES_BBT_BASELINE_H_
#define BREP_BASELINES_BBT_BASELINE_H_

#include <memory>
#include <span>
#include <vector>

#include "bbtree/bbtree.h"
#include "bbtree/disk_bbtree.h"
#include "common/top_k.h"
#include "dataset/matrix.h"
#include "divergence/bregman.h"
#include "storage/pager.h"
#include "storage/point_store.h"

namespace brep {

struct BBTBaselineConfig {
  BBTreeConfig tree;
  size_t pool_pages = 128;
};

/// The "BBT" baseline of the evaluation: a single whole-space BB-tree
/// (Cayton '08) extended to disk "following the idea of our proposed
/// BB-forest" (paper Section 9.4) -- i.e. the same DiskBBTree + PointStore
/// machinery, but without partitioning. Exact.
class BBTBaseline {
 public:
  BBTBaseline(Pager* pager, const Matrix& data, const BregmanDivergence& div,
              const BBTBaselineConfig& config);

  BBTBaseline(const BBTBaseline&) = delete;
  BBTBaseline& operator=(const BBTBaseline&) = delete;

  /// Exact branch-and-bound kNN with disk-charged node and data reads.
  std::vector<Neighbor> KnnSearch(std::span<const double> y, size_t k,
                                  SearchStats* stats = nullptr) const;

  const DiskBBTree& tree() const { return *tree_; }
  const PointStore& point_store() const { return *store_; }

 private:
  std::unique_ptr<PointStore> store_;
  std::unique_ptr<DiskBBTree> tree_;
};

}  // namespace brep

#endif  // BREP_BASELINES_BBT_BASELINE_H_
