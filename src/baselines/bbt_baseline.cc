#include "baselines/bbt_baseline.h"

#include "common/check.h"

namespace brep {

BBTBaseline::BBTBaseline(Pager* pager, const Matrix& data,
                         const BregmanDivergence& div,
                         const BBTBaselineConfig& config) {
  BREP_CHECK(pager != nullptr);
  const BBTree tree(data, div, config.tree);
  // Points are laid out in the tree's own leaf order so a leaf's cluster is
  // (mostly) contiguous on disk, matching the paper's disk extension.
  const std::vector<uint32_t> order = tree.LeafOrder();
  store_ = std::make_unique<PointStore>(pager, data, order);
  tree_ = std::make_unique<DiskBBTree>(pager, tree, config.pool_pages);
}

std::vector<Neighbor> BBTBaseline::KnnSearch(std::span<const double> y,
                                             size_t k,
                                             SearchStats* stats) const {
  return tree_->KnnSearch(y, k, *store_, stats);
}

}  // namespace brep
