#ifndef BREP_BASELINES_LINEAR_SCAN_H_
#define BREP_BASELINES_LINEAR_SCAN_H_

#include <span>
#include <vector>

#include "common/top_k.h"
#include "dataset/matrix.h"
#include "divergence/bregman.h"

namespace brep {

/// Brute-force exact search. Serves as the ground-truth oracle for tests and
/// the overall-ratio metric, and as the "linear search" reference point the
/// paper compares index degradation against.
class LinearScan {
 public:
  /// `data` must outlive the scanner.
  LinearScan(const Matrix& data, const BregmanDivergence& div);

  /// Exact kNN: the k smallest D(x, y), ties broken by id.
  std::vector<Neighbor> KnnSearch(std::span<const double> y, size_t k) const;

  /// Exact range query: ids with D(x, y) <= radius (ascending id order).
  std::vector<uint32_t> RangeSearch(std::span<const double> y,
                                    double radius) const;

  /// Distance from every point to y (used by parameter fitting).
  std::vector<double> AllDistances(std::span<const double> y) const;

 private:
  const Matrix* data_;
  BregmanDivergence div_;
};

}  // namespace brep

#endif  // BREP_BASELINES_LINEAR_SCAN_H_
