#ifndef BREP_BASELINES_VAR_BASELINE_H_
#define BREP_BASELINES_VAR_BASELINE_H_

#include <memory>
#include <span>
#include <vector>

#include "baselines/bbt_baseline.h"

namespace brep {

struct VarBaselineConfig {
  BBTBaselineConfig base;
  /// A frontier node is explored only when the Gaussian model of its
  /// distance distribution predicts at least this many points improving on
  /// the current k-th distance. Higher values prune harder (faster, less
  /// accurate); 0 reduces to the exact search.
  double min_expected_hits = 0.5;
};

/// The "Var" approximate baseline (Coviello et al., ICML'13): the
/// state-of-the-art approximate BB-tree search that uses the data's
/// distribution to limit backtracking. This is a behavioural
/// reimplementation -- nodes carry the empirical mean/stddev of their
/// points' divergence-to-center, and a Gaussian estimate of the probability
/// that a node can improve the current k-th distance gates exploration.
/// No accuracy guarantee, in contrast to ABP's probability guarantee.
class VarBaseline {
 public:
  VarBaseline(Pager* pager, const Matrix& data, const BregmanDivergence& div,
              const VarBaselineConfig& config);

  VarBaseline(const VarBaseline&) = delete;
  VarBaseline& operator=(const VarBaseline&) = delete;

  /// Approximate kNN.
  std::vector<Neighbor> KnnSearch(std::span<const double> y, size_t k,
                                  SearchStats* stats = nullptr) const;

 private:
  VarBaselineConfig config_;
  std::unique_ptr<BBTBaseline> base_;
};

}  // namespace brep

#endif  // BREP_BASELINES_VAR_BASELINE_H_
