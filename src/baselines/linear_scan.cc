#include "baselines/linear_scan.h"

#include "common/check.h"

namespace brep {

LinearScan::LinearScan(const Matrix& data, const BregmanDivergence& div)
    : data_(&data), div_(div) {
  BREP_CHECK(data.cols() == div_.dim());
}

std::vector<Neighbor> LinearScan::KnnSearch(std::span<const double> y,
                                            size_t k) const {
  TopK topk(k);
  for (size_t i = 0; i < data_->rows(); ++i) {
    topk.Push(div_.Divergence(data_->Row(i), y), static_cast<uint32_t>(i));
  }
  return topk.SortedResults();
}

std::vector<uint32_t> LinearScan::RangeSearch(std::span<const double> y,
                                              double radius) const {
  std::vector<uint32_t> result;
  for (size_t i = 0; i < data_->rows(); ++i) {
    if (div_.Divergence(data_->Row(i), y) <= radius) {
      result.push_back(static_cast<uint32_t>(i));
    }
  }
  return result;
}

std::vector<double> LinearScan::AllDistances(std::span<const double> y) const {
  std::vector<double> out(data_->rows());
  for (size_t i = 0; i < data_->rows(); ++i) {
    out[i] = div_.Divergence(data_->Row(i), y);
  }
  return out;
}

}  // namespace brep
