#include "baselines/var_baseline.h"

namespace brep {

VarBaseline::VarBaseline(Pager* pager, const Matrix& data,
                         const BregmanDivergence& div,
                         const VarBaselineConfig& config)
    : config_(config),
      base_(std::make_unique<BBTBaseline>(pager, data, div, config.base)) {}

std::vector<Neighbor> VarBaseline::KnnSearch(std::span<const double> y,
                                             size_t k,
                                             SearchStats* stats) const {
  return base_->tree().KnnSearchVariational(
      y, k, base_->point_store(), config_.min_expected_hits, stats);
}

}  // namespace brep
