#ifndef BREP_SHARD_SHARDED_INDEX_H_
#define BREP_SHARD_SHARDED_INDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/index.h"
#include "api/search_index.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "shard/manifest.h"

/// \file
/// Scale-out serving: hash-partition one logical index across N independent
/// brep::Index shards and serve the uniform SearchIndex surface over them.
///
/// The point with id g lives on shard g % N as local id g / N, so routing
/// is a modulo, the per-shard id spaces never collide, and a shard's
/// ascending local order IS ascending global order -- which is what makes
/// scatter-gather answers byte-identical (ids AND distances) to one big
/// index over the same data: every shard runs the identical exact refine
/// code, and the global TopK merge applies the same (distance, id) total
/// order the unsharded index uses.
///
/// Each shard owns its full vertical slice -- pager, WAL, MVCC writer
/// mutex, metric registry -- so writers routed to different shards never
/// touch a shared lock; the facade's only cross-shard write state is one
/// atomic round-robin insert cursor. Checkpoints cover all shards as a
/// unit through the generation-stamped manifest (see shard/manifest.h):
/// snapshot every shard, commit the manifest, and only then truncate the
/// per-shard logs.

namespace brep {

struct ShardedIndexOptions {
  /// Number of shards (>= 1). Open() takes the authoritative count from
  /// the manifest; this value is ignored there.
  size_t num_shards = 2;
  /// Per-shard construction options. With durability on, `wal_path` is a
  /// prefix: shard k logs to "<wal_path>.shard<k>".
  IndexOptions shard;
  /// Scatter-gather pool threads (0 = hardware concurrency). The pool is
  /// shared by concurrent callers; each call claims shards (or batch rows)
  /// dynamically.
  size_t threads = 0;
};

class ShardedIndex final : public SearchIndex {
 public:
  /// Build over `data`, assigning row i to shard i % N as local id i / N,
  /// so global ids equal row ids exactly like an unsharded Build. Requires
  /// data.rows() >= num_shards (every shard must hold at least one point).
  static StatusOr<std::unique_ptr<ShardedIndex>> Build(
      const Matrix& data, const std::string& divergence,
      const ShardedIndexOptions& options = {});

  /// Reopen the manifest at `path` and every shard it names. A torn or
  /// missing manifest falls back to the "<path>.prev" generation (see
  /// recovered_from_prev_manifest()); with durability on, each shard then
  /// replays its own WAL forward, so the fallback still recovers every
  /// durable write. `options.num_shards` is ignored -- the manifest knows.
  static StatusOr<std::unique_ptr<ShardedIndex>> Open(
      const std::string& path, const ShardedIndexOptions& options = {});

  /// Checkpoint all shards as a unit: snapshot every shard under the next
  /// generation number, atomically commit the manifest naming all of them,
  /// THEN truncate each shard's WAL at its snapshot watermark (only when
  /// `path` is this index's home manifest -- a Save elsewhere is a
  /// consistent copy that leaves the logs alone). A crash anywhere in the
  /// sequence recovers from a committed manifest plus intact logs. On a
  /// durable Build this first Save is what unlocks Insert/Delete, exactly
  /// like brep::Index.
  Status Save(const std::string& path) const;

  // Routing (static so tests and tools can reason about placement).
  static size_t ShardOf(uint32_t global_id, size_t num_shards) {
    return global_id % num_shards;
  }
  static uint32_t LocalId(uint32_t global_id, size_t num_shards) {
    return global_id / static_cast<uint32_t>(num_shards);
  }
  static uint32_t GlobalId(uint32_t local_id, size_t shard,
                           size_t num_shards) {
    return local_id * static_cast<uint32_t>(num_shards) +
           static_cast<uint32_t>(shard);
  }

  size_t num_shards() const { return shards_.size(); }
  const Index& shard(size_t i) const { return *shards_[i]; }
  Index& shard(size_t i) { return *shards_[i]; }
  /// Manifest generation this index serves (0 before the first Save).
  uint64_t generation() const;
  /// Whether Open() had to fall back to the preserved previous manifest.
  bool recovered_from_prev_manifest() const { return fell_back_; }

  // SearchIndex surface ---------------------------------------------------
  std::string Describe() const override;
  size_t dim() const override;
  size_t num_points() const override;
  bool exact() const override { return true; }

  /// Cluster-wide view: every shard's counters and latency histograms
  /// summed by name, size gauges summed, plus the facade's own series
  /// (shard count, per-shard point gauges, scatter/merge latencies).
  obs::MetricsSnapshot Metrics() const override;
  /// All shards' slow-call traces, concatenated in shard order.
  std::vector<obs::QueryTraceEntry> SlowQueries() const override;

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

 protected:
  /// Every shard is built over the same divergence; validate against
  /// shard 0's so a rejected vector never scatters.
  const BregmanDivergence* QueryDivergence() const override;
  StatusOr<std::vector<Neighbor>> KnnImpl(std::span<const double> y, size_t k,
                                          Stats* stats) const override;
  StatusOr<std::vector<uint32_t>> RangeImpl(std::span<const double> y,
                                            double radius,
                                            Stats* stats) const override;
  StatusOr<std::vector<std::vector<Neighbor>>> KnnBatchImpl(
      const Matrix& queries, size_t k, Stats* stats) const override;
  StatusOr<std::vector<std::vector<uint32_t>>> RangeBatchImpl(
      const Matrix& queries, double radius, Stats* stats) const override;
  /// Scatter join: every shard runs its own dual-tree join over R (with k
  /// clamped to the shard's population), then the per-R-row lists merge
  /// through the global (distance, id) TopK -- byte-identical to one big
  /// index over the same data, like the query paths. The sampled arm
  /// samples each shard independently at the same rate/seed; with
  /// measure_recall set, recall is computed globally against the exact
  /// scatter join.
  StatusOr<JoinResult> KnnJoinImpl(const Matrix& r, size_t k,
                                   const JoinOptions& options,
                                   Stats* stats) const override;
  /// Writes route by id: inserts round-robin over shards (one atomic
  /// cursor, no shared lock -- writers on distinct shards proceed in
  /// parallel), deletes to shard id % N. The assigned global id is the
  /// shard's local id mapped back through GlobalId().
  StatusOr<uint32_t> InsertImpl(std::span<const double> point,
                                Stats* stats) override;
  Status DeleteImpl(uint32_t id, Stats* stats) override;

 private:
  ShardedIndex(std::vector<std::unique_ptr<Index>> shards, size_t threads);

  /// One query's scatter-gather; `parallel` fans the shard scatter over
  /// the pool (single-query path) or runs it inline (batch rows already
  /// occupy the lanes).
  Status KnnOne(std::span<const double> y, size_t k, bool parallel,
                std::vector<Neighbor>* out, Stats* stats) const;
  Status RangeOne(std::span<const double> y, double radius, bool parallel,
                  std::vector<uint32_t>* out, Stats* stats) const;

  std::vector<std::unique_ptr<Index>> shards_;
  std::unique_ptr<ThreadPool> pool_;
  bool durable_ = false;
  bool fell_back_ = false;
  /// Round-robin insert cursor (the facade's only cross-shard write state).
  std::atomic<uint64_t> next_shard_{0};
  /// Checkpoint bookkeeping, guarded by save_mutex_: the current manifest
  /// generation and the canonicalized home manifest path (whose Save
  /// truncates the logs).
  mutable std::mutex save_mutex_;
  mutable uint64_t generation_ = 0;
  mutable std::string home_path_;
  /// Facade-owned series (scatter/merge latencies).
  mutable obs::MetricRegistry registry_;
  obs::LatencyHistogram* scatter_latency_ = nullptr;
  obs::LatencyHistogram* merge_latency_ = nullptr;
};

}  // namespace brep

#endif  // BREP_SHARD_SHARDED_INDEX_H_
