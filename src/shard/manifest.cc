#include "shard/manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "storage/file_pager.h"
#include "storage/serial.h"

namespace brep::shard {
namespace {

constexpr uint64_t kMagic = 0x4452485350455242ull;  // "BREPSHRD"
constexpr uint32_t kVersion = 1;

std::string Errno() { return std::strerror(errno); }

Status WriteFileDurably(const std::string& path,
                        std::span<const uint8_t> bytes) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create \"" + path + "\": " + Errno());
  }
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::Internal("cannot write \"" + path + "\": " + Errno());
      ::close(fd);
      return status;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status status =
        Status::Internal("cannot fsync \"" + path + "\": " + Errno());
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace

std::string ShardFileName(const std::string& path, uint64_t generation,
                          size_t shard) {
  return std::filesystem::path(path).filename().string() + ".g" +
         std::to_string(generation) + ".shard" + std::to_string(shard);
}

std::string ResolveShardPath(const std::string& manifest_path,
                             const std::string& file) {
  return (std::filesystem::path(manifest_path).parent_path() / file).string();
}

Status WriteManifest(const std::string& path, const Manifest& m) {
  ByteWriter w;
  w.Value<uint64_t>(kMagic);
  w.Value<uint32_t>(kVersion);
  w.Value<uint64_t>(m.generation);
  w.Value<uint32_t>(static_cast<uint32_t>(m.shards.size()));
  for (const ManifestShard& s : m.shards) {
    w.Str(s.file);
    w.Value<uint64_t>(s.durable_lsn);
  }
  w.Value<uint64_t>(Fnv1a64(w.bytes()));

  const std::string tmp = path + ".tmp";
  BREP_RETURN_IF_ERROR(WriteFileDurably(tmp, w.bytes()));

  // Preserve the committed manifest as `.prev` before renaming over it, so
  // a torn write of the new copy (should the rename itself be interrupted
  // by a crash mid-journal) still leaves a decodable generation behind.
  // Only a manifest that actually decodes is worth preserving: after a
  // fallback open the primary on disk is the torn copy, and replacing a
  // good `.prev` with it would discard the last readable generation.
  const std::string prev = path + ".prev";
  Manifest current;
  if (ReadManifest(path, &current).ok()) {
    ::unlink(prev.c_str());
    if (::link(path.c_str(), prev.c_str()) != 0 && errno != ENOENT) {
      ::unlink(tmp.c_str());
      return Status::Internal("cannot preserve \"" + path + "\" as \"" + prev +
                              "\": " + Errno());
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Status::Internal(
        "cannot move \"" + tmp + "\" over \"" + path + "\": " + Errno());
    ::unlink(tmp.c_str());
    return status;
  }
  if (!FilePager::SyncDirectory(path)) {
    return Status::Internal("cannot fsync the directory holding \"" + path +
                            "\"");
  }
  return Status::Ok();
}

Status ReadManifest(const std::string& path, Manifest* out) {
  std::vector<uint8_t> bytes;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound("no shard manifest at \"" + path + "\"");
      }
      return Status::Internal("cannot open \"" + path + "\": " + Errno());
    }
    uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status status =
            Status::Internal("cannot read \"" + path + "\": " + Errno());
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
  }
  if (bytes.size() < sizeof(uint64_t)) {
    return Status::DataLoss("shard manifest \"" + path + "\" is truncated");
  }
  const std::span<const uint8_t> body(bytes.data(),
                                      bytes.size() - sizeof(uint64_t));
  uint64_t want = 0;
  std::memcpy(&want, bytes.data() + body.size(), sizeof(want));
  if (Fnv1a64(body) != want) {
    return Status::DataLoss("shard manifest \"" + path +
                            "\" fails its checksum (torn or corrupt write)");
  }
  ByteReader r(body);
  if (r.Value<uint64_t>() != kMagic) {
    return Status::DataLoss("\"" + path + "\" is not a shard manifest");
  }
  const uint32_t version = r.Value<uint32_t>();
  if (version != kVersion) {
    return Status::DataLoss("shard manifest \"" + path +
                            "\" has unsupported version " +
                            std::to_string(version));
  }
  Manifest m;
  m.generation = r.Value<uint64_t>();
  const uint32_t count = r.Value<uint32_t>();
  m.shards.reserve(count);
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    ManifestShard s;
    s.file = r.Str();
    s.durable_lsn = r.Value<uint64_t>();
    m.shards.push_back(std::move(s));
  }
  if (!r.ok() || r.remaining() != 0 || m.shards.size() != count ||
      m.shards.empty()) {
    return Status::DataLoss("shard manifest \"" + path +
                            "\" is malformed despite a valid checksum");
  }
  *out = std::move(m);
  return Status::Ok();
}

Status ReadManifestOrPrev(const std::string& path, Manifest* out,
                          bool* fell_back) {
  if (fell_back != nullptr) *fell_back = false;
  const Status primary = ReadManifest(path, out);
  if (primary.ok()) return primary;
  Manifest prev;
  if (ReadManifest(path + ".prev", &prev).ok()) {
    if (fell_back != nullptr) *fell_back = true;
    *out = std::move(prev);
    return Status::Ok();
  }
  return primary;  // the primary's error names the real problem
}

}  // namespace brep::shard
