#ifndef BREP_SHARD_REPLICA_INDEX_H_
#define BREP_SHARD_REPLICA_INDEX_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "api/durable_index.h"
#include "api/search_index.h"
#include "wal/wal_reader.h"

/// \file
/// WAL-shipping read replica: Open a primary's checkpoint file, then tail
/// the primary's live WAL through WalReader::ReadFrom and apply each
/// shipped record through the same locked replay path crash recovery uses.
/// The replica serves read-only traffic the whole time -- readers pin MVCC
/// snapshots lock-free while the tailing thread applies and publishes
/// under the replica's own writer mutex, exactly like a local writer.
///
/// The transport is pluggable (see wal/wal_reader.h); the bundled
/// file-tail transport polls the primary's log file, which covers the
/// single-machine and shared-filesystem topologies. A replica that falls
/// behind a primary checkpoint (the log's base ran past what the replica
/// applied) gets a clean kDataLoss from Poll() and must re-seed from the
/// primary's current checkpoint file.

namespace brep {

class BrePartition;
class QueryEngine;

class ReplicaIndex final : public SearchIndex {
 public:
  /// Open the primary's checkpoint at `checkpoint_path` and tail the log
  /// at `wal_path`. The replica starts at the checkpoint's durable LSN;
  /// call Poll() (or StartTailing) to catch up and stay current.
  static StatusOr<std::unique_ptr<ReplicaIndex>> Open(
      const std::string& checkpoint_path, const std::string& wal_path);

  /// Same, over a caller-provided shipping transport.
  static StatusOr<std::unique_ptr<ReplicaIndex>> Open(
      const std::string& checkpoint_path,
      std::unique_ptr<WalTransport> transport);

  ~ReplicaIndex() override;

  /// One shipping round: read every newly visible record past the applied
  /// LSN and apply it. Returns the number of records applied this round.
  /// Safe concurrently with serving and with a running tail thread (polls
  /// serialize). kDataLoss when the primary's log no longer reaches back
  /// to the replica's state (re-seed required) or ships corrupt bytes.
  StatusOr<size_t> Poll();

  /// Spawn a background thread that Polls every `interval_ms` until
  /// StopTailing (or destruction). A background error stops the loop and
  /// is reported by tail_status(). kFailedPrecondition if already tailing.
  Status StartTailing(double interval_ms = 10.0);
  void StopTailing();
  bool tailing() const;
  /// First error the tail thread hit (sticky; OK while healthy).
  Status tail_status() const;

  /// Highest LSN applied to the serving state.
  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_relaxed);
  }
  /// Records known shipped but not yet applied as of the last poll (an
  /// in-flight torn append counts as one); 0 once converged. Exported as
  /// obs::kReplicationLagLsnsGauge.
  uint64_t replication_lag_lsns() const {
    return lag_.load(std::memory_order_relaxed);
  }

  // SearchIndex surface (read-only: Insert/Delete inherit the
  // kFailedPrecondition default) -------------------------------------------
  std::string Describe() const override;
  size_t dim() const override;
  size_t num_points() const override;
  bool exact() const override { return true; }
  /// The replica's own registry (its reads land here, not the primary's)
  /// plus the replication series: lag gauge, applied/polls/resets totals.
  obs::MetricsSnapshot Metrics() const override;
  std::vector<obs::QueryTraceEntry> SlowQueries() const override;

  ReplicaIndex(const ReplicaIndex&) = delete;
  ReplicaIndex& operator=(const ReplicaIndex&) = delete;

 protected:
  const BregmanDivergence* QueryDivergence() const override;
  StatusOr<std::vector<Neighbor>> KnnImpl(std::span<const double> y, size_t k,
                                          Stats* stats) const override;
  StatusOr<std::vector<uint32_t>> RangeImpl(std::span<const double> y,
                                            double radius,
                                            Stats* stats) const override;

 private:
  ReplicaIndex(std::unique_ptr<Pager> pager, std::unique_ptr<BrePartition> bp,
               std::unique_ptr<WalTransport> transport);

  void TailLoop(double interval_ms);

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BrePartition> bp_;
  /// Sequential reference engine for the range path (mirrors brep::Index).
  std::unique_ptr<QueryEngine> engine_;

  /// Shipping cursor; poll_mutex_ serializes polls (explicit Poll calls vs
  /// the tail thread) -- the reader's cursor is single-consumer state.
  mutable std::mutex poll_mutex_;
  WalReader reader_;

  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> lag_{0};
  std::atomic<uint64_t> applied_records_{0};
  std::atomic<uint64_t> polls_{0};
  std::atomic<uint64_t> resets_{0};

  /// Tail thread state, guarded by tail_mutex_.
  mutable std::mutex tail_mutex_;
  std::condition_variable tail_cv_;
  std::thread tail_thread_;
  bool tail_stop_ = false;
  Status tail_status_;
};

}  // namespace brep

#endif  // BREP_SHARD_REPLICA_INDEX_H_
