#ifndef BREP_SHARD_MANIFEST_H_
#define BREP_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/status.h"

/// \file
/// The shard manifest: one small checksummed file that makes a multi-shard
/// checkpoint atomic as a unit. Each Save writes every shard's snapshot
/// under a fresh generation number, then commits the manifest naming all of
/// them in one rename. A crash between per-shard snapshots leaves the old
/// manifest (and the old generation's files) fully intact; a torn manifest
/// fails its checksum and Open falls back to the preserved previous copy at
/// `<path>.prev`. Per-shard WALs are truncated only AFTER the manifest
/// commit, so recovery always replays forward from whichever generation the
/// manifest actually names.

namespace brep::shard {

/// One shard's entry: its checkpoint file (basename, resolved against the
/// manifest's directory) and the WAL watermark that checkpoint absorbed.
struct ManifestShard {
  std::string file;
  uint64_t durable_lsn = 0;
};

struct Manifest {
  uint64_t generation = 0;
  std::vector<ManifestShard> shards;

  size_t num_shards() const { return shards.size(); }
};

/// Checkpoint file basename for shard `shard` of generation `generation`
/// under manifest path `path` (e.g. "idx.shards.g3.shard1").
std::string ShardFileName(const std::string& path, uint64_t generation,
                          size_t shard);

/// Resolve a manifest entry's basename against the manifest's directory.
std::string ResolveShardPath(const std::string& manifest_path,
                             const std::string& file);

/// Atomically commit `m` at `path`: write `path.tmp`, preserve the current
/// manifest (if any) as `path.prev` via hardlink, rename the new one into
/// place, and fsync the directory.
Status WriteManifest(const std::string& path, const Manifest& m);

/// Strict decode of the manifest at `path` (magic, version, checksum).
/// kNotFound if the file does not exist; kDataLoss if it is torn/corrupt.
Status ReadManifest(const std::string& path, Manifest* out);

/// ReadManifest with fallback: a missing-but-recoverable or corrupt manifest
/// at `path` falls back to `path.prev` (the generation preserved by the last
/// successful commit). `fell_back`, when non-null, reports which copy won.
Status ReadManifestOrPrev(const std::string& path, Manifest* out,
                          bool* fell_back = nullptr);

}  // namespace brep::shard

#endif  // BREP_SHARD_MANIFEST_H_
