#include "shard/sharded_index.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "common/top_k.h"
#include "obs/index_metrics.h"

namespace brep {
namespace {

/// Far above any sane deployment, low enough that a garbage argument
/// cannot exhaust file descriptors or threads.
constexpr size_t kMaxShards = 256;
constexpr size_t kMaxThreads = 1024;

std::string CanonicalPath(const std::string& path) {
  std::error_code ec;
  const std::filesystem::path canon =
      std::filesystem::weakly_canonical(path, ec);
  return ec ? path : canon.string();
}

std::string ShardWalPath(const std::string& prefix, size_t shard) {
  return prefix + ".shard" + std::to_string(shard);
}

/// Per-shard options: same construction knobs, a private WAL.
IndexOptions ShardOptions(const ShardedIndexOptions& options, size_t shard) {
  IndexOptions opt = options.shard;
  if (opt.durability.enabled()) {
    opt.durability.wal_path = ShardWalPath(opt.durability.wal_path, shard);
  }
  return opt;
}

/// Fold one shard call's backend lanes into the facade's stats record. The
/// wrapper-owned lanes (queries, inserts, deletes, wall_ms) stay with the
/// FACADE wrapper -- the shard's own wrapper counted them for the shard's
/// registry already.
void AddShardLanes(SearchIndex::Stats* dst, const SearchIndex::Stats& s) {
  dst->wal_appends += s.wal_appends;
  dst->wal_fsyncs += s.wal_fsyncs;
  dst->wal_replayed += s.wal_replayed;
  dst->io_reads += s.io_reads;
  dst->candidates += s.candidates;
  dst->nodes_visited += s.nodes_visited;
  dst->leaves_visited += s.leaves_visited;
  dst->points_evaluated += s.points_evaluated;
  dst->pool_hits += s.pool_hits;
  dst->pool_misses += s.pool_misses;
  dst->radius_total += s.radius_total;
}

/// Bucket-wise histogram sum for the cluster-wide view.
obs::HistogramSnapshot MergeHistograms(const obs::HistogramSnapshot& a,
                                       const obs::HistogramSnapshot& b) {
  obs::HistogramSnapshot out = a;
  out.count += b.count;
  out.sum_ms += b.sum_ms;
  out.max_ms = std::max(out.max_ms, b.max_ms);
  for (size_t i = 0; i < obs::kHistogramBuckets; ++i) {
    out.buckets[i] += b.buckets[i];
  }
  return out;
}

Status ValidateOptions(const ShardedIndexOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.num_shards > kMaxShards) {
    return Status::InvalidArgument(
        "num_shards = " + std::to_string(options.num_shards) +
        " exceeds the cap of " + std::to_string(kMaxShards));
  }
  if (options.threads > kMaxThreads) {
    return Status::InvalidArgument(
        "threads = " + std::to_string(options.threads) +
        " exceeds the cap of " + std::to_string(kMaxThreads) +
        " (0 means hardware concurrency)");
  }
  return Status::Ok();
}

}  // namespace

ShardedIndex::ShardedIndex(std::vector<std::unique_ptr<Index>> shards,
                           size_t threads)
    : shards_(std::move(shards)) {
  const size_t total = threads == 0
                           ? std::max<size_t>(1, std::thread::hardware_concurrency())
                           : threads;
  pool_ = std::make_unique<ThreadPool>(total - 1);
  scatter_latency_ = &registry_.GetHistogram(obs::kShardScatterLatencyMs);
  merge_latency_ = &registry_.GetHistogram(obs::kShardMergeLatencyMs);
  size_t points = 0;
  for (const auto& shard : shards_) points += shard->num_points();
  next_shard_.store(points % shards_.size(), std::memory_order_relaxed);
}

StatusOr<std::unique_ptr<ShardedIndex>> ShardedIndex::Build(
    const Matrix& data, const std::string& divergence,
    const ShardedIndexOptions& options) {
  BREP_RETURN_IF_ERROR(ValidateOptions(options));
  const size_t n = options.num_shards;
  if (data.rows() < n) {
    return Status::InvalidArgument(
        "dataset has " + std::to_string(data.rows()) + " rows but " +
        std::to_string(n) + " shards were requested; every shard must hold "
        "at least one point");
  }
  std::vector<std::unique_ptr<Index>> shards;
  shards.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    // Row i -> shard i % n as local id i / n, so global ids equal row ids.
    std::vector<size_t> rows;
    rows.reserve(data.rows() / n + 1);
    for (size_t i = k; i < data.rows(); i += n) rows.push_back(i);
    const Matrix part = data.GatherRows(rows);
    BREP_ASSIGN_OR_RETURN(
        Index shard, Index::Build(part, divergence, ShardOptions(options, k)));
    shards.push_back(std::make_unique<Index>(std::move(shard)));
  }
  auto index = std::unique_ptr<ShardedIndex>(
      new ShardedIndex(std::move(shards), options.threads));
  index->durable_ = options.shard.durability.enabled();
  return index;
}

StatusOr<std::unique_ptr<ShardedIndex>> ShardedIndex::Open(
    const std::string& path, const ShardedIndexOptions& options) {
  BREP_RETURN_IF_ERROR(ValidateOptions(options));
  shard::Manifest m;
  bool fell_back = false;
  BREP_RETURN_IF_ERROR(shard::ReadManifestOrPrev(path, &m, &fell_back));
  const bool durable = options.shard.durability.enabled();
  std::vector<std::unique_ptr<Index>> shards;
  shards.reserve(m.num_shards());
  for (size_t k = 0; k < m.num_shards(); ++k) {
    const std::string file = shard::ResolveShardPath(path, m.shards[k].file);
    if (durable) {
      BREP_ASSIGN_OR_RETURN(
          Index shard,
          Index::Open(file, ShardOptions(options, k).durability));
      shards.push_back(std::make_unique<Index>(std::move(shard)));
    } else {
      BREP_ASSIGN_OR_RETURN(Index shard, Index::Open(file));
      shards.push_back(std::make_unique<Index>(std::move(shard)));
    }
  }
  auto index = std::unique_ptr<ShardedIndex>(
      new ShardedIndex(std::move(shards), options.threads));
  index->durable_ = durable;
  index->fell_back_ = fell_back;
  index->generation_ = m.generation;
  index->home_path_ = CanonicalPath(path);
  return index;
}

Status ShardedIndex::Save(const std::string& path) const {
  // One checkpoint at a time; queries and writes keep flowing (each shard's
  // SaveSnapshot copies a pinned MVCC view with no lock held).
  std::lock_guard<std::mutex> lock(save_mutex_);
  const std::string canon = CanonicalPath(path);
  if (home_path_.empty()) home_path_ = canon;
  const bool home = canon == home_path_;

  // Pick the next generation past whatever the target already holds (a
  // non-home Save must not collide with that manifest's own lineage).
  uint64_t base_gen = home ? generation_ : 0;
  shard::Manifest existing;
  if (shard::ReadManifestOrPrev(path, &existing).ok()) {
    base_gen = std::max(base_gen, existing.generation);
  }
  const uint64_t gen = base_gen + 1;

  // Phase 1: snapshot every shard under the new generation. Nothing here
  // is visible to Open() -- the old manifest still names the old files.
  shard::Manifest m;
  m.generation = gen;
  std::vector<uint64_t> watermarks(shards_.size(), 0);
  for (size_t k = 0; k < shards_.size(); ++k) {
    const std::string file = shard::ShardFileName(path, gen, k);
    BREP_ASSIGN_OR_RETURN(
        watermarks[k],
        shards_[k]->SaveSnapshot(shard::ResolveShardPath(path, file)));
    m.shards.push_back({file, watermarks[k]});
  }

  // Phase 2: the commit point. One atomic rename flips every shard to the
  // new generation together; the previous manifest survives as `.prev`.
  BREP_RETURN_IF_ERROR(shard::WriteManifest(path, m));

  // Phase 3: only now is it safe to let the logs go -- and only for the
  // home manifest (a Save elsewhere must leave the home lineage's redo
  // records alone). TruncateWal declines per shard when writes landed past
  // the snapshot watermark.
  if (home) {
    generation_ = gen;
    for (size_t k = 0; k < shards_.size(); ++k) {
      BREP_RETURN_IF_ERROR(shards_[k]->TruncateWal(watermarks[k]));
    }
  }

  // Best-effort cleanup: generations before `.prev`'s can no longer be
  // reached by any recovery path.
  if (gen >= 3) {
    for (size_t k = 0; k < shards_.size(); ++k) {
      ::unlink(shard::ResolveShardPath(path,
                                       shard::ShardFileName(path, gen - 2, k))
                   .c_str());
    }
  }
  return Status::Ok();
}

uint64_t ShardedIndex::generation() const {
  std::lock_guard<std::mutex> lock(save_mutex_);
  return generation_;
}

std::string ShardedIndex::Describe() const {
  return "sharded(shards=" + std::to_string(shards_.size()) +
         ", n=" + std::to_string(num_points()) +
         ", threads=" + std::to_string(pool_->num_lanes()) + ") over " +
         shards_[0]->Describe();
}

size_t ShardedIndex::dim() const { return shards_[0]->dim(); }

const BregmanDivergence* ShardedIndex::QueryDivergence() const {
  return &shards_[0]->divergence();
}

size_t ShardedIndex::num_points() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->num_points();
  return total;
}

obs::MetricsSnapshot ShardedIndex::Metrics() const {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, obs::HistogramSnapshot> histograms;
  obs::MetricsSnapshot out;
  for (size_t k = 0; k < shards_.size(); ++k) {
    obs::MetricsSnapshot snap = shards_[k]->Metrics();
    for (auto& [name, value] : snap.counters) counters[name] += value;
    for (auto& [name, value] : snap.gauges) gauges[name] += value;
    for (auto& [name, value] : snap.histograms) {
      auto [it, fresh] = histograms.emplace(name, value);
      if (!fresh) it->second = MergeHistograms(it->second, value);
    }
    const double* points = snap.FindGauge(obs::kPointsGauge);
    out.AddGauge(std::string(obs::kPointsGauge) + "_shard" +
                     std::to_string(k),
                 points != nullptr ? *points : 0.0);
  }
  for (auto& [name, value] : counters) out.AddCounter(name, value);
  for (auto& [name, value] : gauges) out.AddGauge(name, value);
  for (auto& [name, value] : histograms) out.AddHistogram(name, value);
  out.AddGauge(obs::kShardsGauge, double(shards_.size()));
  obs::MetricsSnapshot own = registry_.Snapshot();
  for (auto& [name, value] : own.counters) out.AddCounter(name, value);
  for (auto& [name, value] : own.gauges) out.AddGauge(name, value);
  for (auto& [name, value] : own.histograms) out.AddHistogram(name, value);
  out.Sort();
  return out;
}

std::vector<obs::QueryTraceEntry> ShardedIndex::SlowQueries() const {
  std::vector<obs::QueryTraceEntry> out;
  for (const auto& shard : shards_) {
    auto entries = shard->SlowQueries();
    out.insert(out.end(), entries.begin(), entries.end());
  }
  return out;
}

Status ShardedIndex::KnnOne(std::span<const double> y, size_t k,
                            bool parallel, std::vector<Neighbor>* out,
                            Stats* stats) const {
  const size_t n = shards_.size();
  std::vector<std::vector<Neighbor>> per(n);
  std::vector<Stats> shard_stats(n);
  std::vector<Status> shard_status(n);
  Timer scatter_timer;
  auto run_shard = [&](size_t i) {
    const size_t avail = shards_[i]->num_points();
    if (avail == 0) return;  // empty shard contributes nothing
    auto result = shards_[i]->Knn(y, std::min(k, avail), &shard_stats[i]);
    if (!result.ok()) {
      shard_status[i] = result.status();
      return;
    }
    per[i] = *std::move(result);
    // A shard's ascending local order IS ascending global order, so the
    // id rewrite preserves each list's (distance, id) sort.
    for (Neighbor& nb : per[i]) nb.id = GlobalId(nb.id, i, n);
  };
  if (parallel && n > 1) {
    pool_->ParallelFor(n, [&](size_t i, size_t) { run_shard(i); });
  } else {
    for (size_t i = 0; i < n; ++i) run_shard(i);
  }
  scatter_latency_->Record(scatter_timer.ElapsedMillis());
  for (size_t i = 0; i < n; ++i) {
    BREP_RETURN_IF_ERROR(shard_status[i]);
    AddShardLanes(stats, shard_stats[i]);
  }
  Timer merge_timer;
  *out = MergeKnn(per, k);
  merge_latency_->Record(merge_timer.ElapsedMillis());
  return Status::Ok();
}

Status ShardedIndex::RangeOne(std::span<const double> y, double radius,
                              bool parallel, std::vector<uint32_t>* out,
                              Stats* stats) const {
  const size_t n = shards_.size();
  std::vector<std::vector<uint32_t>> per(n);
  std::vector<Stats> shard_stats(n);
  std::vector<Status> shard_status(n);
  Timer scatter_timer;
  auto run_shard = [&](size_t i) {
    if (shards_[i]->num_points() == 0) return;
    auto result = shards_[i]->Range(y, radius, &shard_stats[i]);
    if (!result.ok()) {
      shard_status[i] = result.status();
      return;
    }
    per[i] = *std::move(result);
    for (uint32_t& id : per[i]) id = GlobalId(id, i, n);
  };
  if (parallel && n > 1) {
    pool_->ParallelFor(n, [&](size_t i, size_t) { run_shard(i); });
  } else {
    for (size_t i = 0; i < n; ++i) run_shard(i);
  }
  scatter_latency_->Record(scatter_timer.ElapsedMillis());
  for (size_t i = 0; i < n; ++i) {
    BREP_RETURN_IF_ERROR(shard_status[i]);
    AddShardLanes(stats, shard_stats[i]);
  }
  Timer merge_timer;
  *out = MergeRange(per);
  merge_latency_->Record(merge_timer.ElapsedMillis());
  return Status::Ok();
}

StatusOr<std::vector<Neighbor>> ShardedIndex::KnnImpl(
    std::span<const double> y, size_t k, Stats* stats) const {
  std::vector<Neighbor> out;
  BREP_RETURN_IF_ERROR(KnnOne(y, k, /*parallel=*/true, &out, stats));
  return out;
}

StatusOr<std::vector<uint32_t>> ShardedIndex::RangeImpl(
    std::span<const double> y, double radius, Stats* stats) const {
  std::vector<uint32_t> out;
  BREP_RETURN_IF_ERROR(RangeOne(y, radius, /*parallel=*/true, &out, stats));
  return out;
}

StatusOr<std::vector<std::vector<Neighbor>>> ShardedIndex::KnnBatchImpl(
    const Matrix& queries, size_t k, Stats* stats) const {
  std::vector<std::vector<Neighbor>> out(queries.rows());
  const size_t lanes = pool_->num_lanes();
  std::vector<Stats> lane_stats(lanes);
  std::vector<Status> lane_status(lanes);
  // Parallelize ACROSS queries; each row scatters over its shards inline
  // (the lanes are already busy, nesting fan-outs would just add queueing).
  pool_->ParallelFor(queries.rows(), [&](size_t q, size_t lane) {
    if (!lane_status[lane].ok()) return;
    lane_status[lane] = KnnOne(queries.Row(q), k, /*parallel=*/false,
                               &out[q], &lane_stats[lane]);
  });
  for (size_t lane = 0; lane < lanes; ++lane) {
    BREP_RETURN_IF_ERROR(lane_status[lane]);
    AddShardLanes(stats, lane_stats[lane]);
  }
  return out;
}

StatusOr<std::vector<std::vector<uint32_t>>> ShardedIndex::RangeBatchImpl(
    const Matrix& queries, double radius, Stats* stats) const {
  std::vector<std::vector<uint32_t>> out(queries.rows());
  const size_t lanes = pool_->num_lanes();
  std::vector<Stats> lane_stats(lanes);
  std::vector<Status> lane_status(lanes);
  pool_->ParallelFor(queries.rows(), [&](size_t q, size_t lane) {
    if (!lane_status[lane].ok()) return;
    lane_status[lane] = RangeOne(queries.Row(q), radius, /*parallel=*/false,
                                 &out[q], &lane_stats[lane]);
  });
  for (size_t lane = 0; lane < lanes; ++lane) {
    BREP_RETURN_IF_ERROR(lane_status[lane]);
    AddShardLanes(stats, lane_stats[lane]);
  }
  return out;
}

StatusOr<JoinResult> ShardedIndex::KnnJoinImpl(const Matrix& r, size_t k,
                                               const JoinOptions& options,
                                               Stats* stats) const {
  const size_t n = shards_.size();
  // One scatter pass: every shard joins R against its own slice (k clamped
  // to the shard's -- possibly sampled -- population), lists are rewritten
  // into global id space, and each R row merges through the global
  // (distance, id) TopK. `sink` may be null for a measurement-only pass
  // whose work should not land in the caller's counters.
  const auto scatter =
      [&](const JoinOptions& opts,
          Stats* sink) -> StatusOr<JoinResult> {
    std::vector<JoinResult> per(n);
    std::vector<Stats> shard_stats(n);
    std::vector<Status> shard_status(n);
    Timer scatter_timer;
    const auto run_shard = [&](size_t i) {
      const size_t avail = shards_[i]->num_points();
      if (avail == 0) return;  // empty shard contributes nothing
      const size_t k_s = std::min(k, SampledJoinCount(opts.sample_rate,
                                                      avail));
      auto result = shards_[i]->KnnJoin(r, k_s, opts, &shard_stats[i]);
      if (!result.ok()) {
        shard_status[i] = result.status();
        return;
      }
      per[i] = *std::move(result);
      // A shard's ascending local order IS ascending global order, so the
      // id rewrite preserves each list's (distance, id) sort.
      for (std::vector<Neighbor>& row : per[i].neighbors) {
        for (Neighbor& nb : row) nb.id = GlobalId(nb.id, i, n);
      }
    };
    if (n > 1) {
      pool_->ParallelFor(n, [&](size_t i, size_t) { run_shard(i); });
    } else {
      run_shard(0);
    }
    scatter_latency_->Record(scatter_timer.ElapsedMillis());
    JoinResult out;
    for (size_t i = 0; i < n; ++i) {
      BREP_RETURN_IF_ERROR(shard_status[i]);
      if (sink != nullptr) AddShardLanes(sink, shard_stats[i]);
      out.stats.node_pairs_visited += per[i].stats.node_pairs_visited;
      out.stats.node_pairs_pruned += per[i].stats.node_pairs_pruned;
      out.stats.leaf_blocks += per[i].stats.leaf_blocks;
      out.stats.pairs_evaluated += per[i].stats.pairs_evaluated;
      out.stats.r_tree_nodes += per[i].stats.r_tree_nodes;
      out.stats.s_tree_nodes += per[i].stats.s_tree_nodes;
      out.stats.build_ms += per[i].stats.build_ms;
      out.stats.descent_ms += per[i].stats.descent_ms;
    }
    Timer merge_timer;
    out.neighbors.resize(r.rows());
    std::vector<std::vector<Neighbor>> rows(n);
    for (size_t q = 0; q < r.rows(); ++q) {
      for (size_t i = 0; i < n; ++i) {
        rows[i] = per[i].neighbors.size() == r.rows()
                      ? std::move(per[i].neighbors[q])
                      : std::vector<Neighbor>{};
      }
      out.neighbors[q] = MergeKnn(rows, k);
    }
    merge_latency_->Record(merge_timer.ElapsedMillis());
    return out;
  };

  if (options.sample_rate < 1.0 && options.measure_recall) {
    // Recall must be judged globally (a per-shard measurement would score
    // each shard against its own slice only): run the sampled scatter for
    // the answer and an exact scatter for the truth set, and keep only the
    // sampled pass's work in the caller's counters.
    JoinOptions sampled_opts = options;
    sampled_opts.measure_recall = false;
    BREP_ASSIGN_OR_RETURN(JoinResult sampled, scatter(sampled_opts, stats));
    JoinOptions exact_opts = options;
    exact_opts.sample_rate = 1.0;
    exact_opts.measure_recall = false;
    BREP_ASSIGN_OR_RETURN(const JoinResult exact,
                          scatter(exact_opts, /*sink=*/nullptr));
    sampled.stats.sampled_recall =
        MeanJoinRecall(sampled.neighbors, exact.neighbors);
    return sampled;
  }
  BREP_ASSIGN_OR_RETURN(JoinResult out, scatter(options, stats));
  // Exact join against the full truth set: recall is 1 by definition.
  if (options.measure_recall) out.stats.sampled_recall = 1.0;
  return out;
}

StatusOr<uint32_t> ShardedIndex::InsertImpl(std::span<const double> point,
                                            Stats* stats) {
  const size_t n = shards_.size();
  // The routing decision is the facade's ONLY cross-shard write state:
  // writers on different shards proceed under different per-shard writer
  // mutexes from here on.
  const size_t target =
      next_shard_.fetch_add(1, std::memory_order_relaxed) % n;
  Stats shard_stats;
  auto local = shards_[target]->Insert(point, &shard_stats);
  AddShardLanes(stats, shard_stats);
  if (!local.ok()) {
    // A rejected insert gives its slot back (the cursor is load balancing,
    // not correctness), keeping routing deterministic for sequential
    // callers even across validation failures.
    next_shard_.fetch_sub(1, std::memory_order_relaxed);
    return local.status();
  }
  return GlobalId(*local, target, n);
}

Status ShardedIndex::DeleteImpl(uint32_t id, Stats* stats) {
  const size_t n = shards_.size();
  Stats shard_stats;
  const Status status =
      shards_[ShardOf(id, n)]->Delete(LocalId(id, n), &shard_stats);
  AddShardLanes(stats, shard_stats);
  if (status.code() == StatusCode::kNotFound) {
    // The shard speaks local ids; rewrite in the caller's space.
    return Status::NotFound("no live point with id " + std::to_string(id));
  }
  return status;
}

}  // namespace brep
