#include "shard/replica_index.h"

#include <chrono>
#include <filesystem>
#include <utility>

#include "common/check.h"
#include "core/brepartition.h"
#include "core/stats.h"
#include "engine/query_engine.h"
#include "obs/index_metrics.h"
#include "storage/file_pager.h"

namespace brep {

ReplicaIndex::ReplicaIndex(std::unique_ptr<Pager> pager,
                           std::unique_ptr<BrePartition> bp,
                           std::unique_ptr<WalTransport> transport)
    : pager_(std::move(pager)),
      bp_(std::move(bp)),
      reader_(std::move(transport)) {
  QueryEngineOptions options;
  options.num_threads = 1;
  options.parallel_filter = false;
  engine_ = std::make_unique<QueryEngine>(*bp_, options);
}

ReplicaIndex::~ReplicaIndex() { StopTailing(); }

StatusOr<std::unique_ptr<ReplicaIndex>> ReplicaIndex::Open(
    const std::string& checkpoint_path, const std::string& wal_path) {
  return Open(checkpoint_path, MakeFileTailTransport(wal_path));
}

StatusOr<std::unique_ptr<ReplicaIndex>> ReplicaIndex::Open(
    const std::string& checkpoint_path,
    std::unique_ptr<WalTransport> transport) {
  if (transport == nullptr) {
    return Status::InvalidArgument("transport must not be null");
  }
  std::error_code ec;
  if (!std::filesystem::exists(checkpoint_path, ec)) {
    return Status::NotFound("no index file at \"" + checkpoint_path + "\"");
  }
  std::string error;
  auto file = FilePager::Open(checkpoint_path, &error);
  if (file == nullptr) {
    return Status::DataLoss("cannot open index file \"" + checkpoint_path +
                            "\": " + error);
  }
  // Serve from a memory snapshot of the checkpoint: the primary keeps
  // rewriting its own files, and the replica's state advances only through
  // applied log records.
  auto mem = durable::LoadIntoMemory(*file);
  file.reset();
  auto bp = BrePartition::Open(mem.get(), &error);
  if (bp == nullptr) {
    return Status::DataLoss("index file \"" + checkpoint_path +
                            "\" has no serviceable index: " + error);
  }
  const uint64_t durable_lsn = mem->catalog().durable_lsn;
  auto replica = std::unique_ptr<ReplicaIndex>(new ReplicaIndex(
      std::move(mem), std::move(bp), std::move(transport)));
  replica->applied_lsn_.store(durable_lsn, std::memory_order_relaxed);
  return replica;
}

StatusOr<size_t> ReplicaIndex::Poll() {
  // The reader cursor is single-consumer state: explicit polls and the
  // tail thread serialize here. Serving never touches this mutex.
  std::lock_guard<std::mutex> poll_lock(poll_mutex_);
  polls_.fetch_add(1, std::memory_order_relaxed);
  auto chunk_or = reader_.ReadFrom(applied_lsn());
  if (!chunk_or.ok()) return chunk_or.status();
  WalTailChunk chunk = *std::move(chunk_or);
  if (chunk.reset) resets_.fetch_add(1, std::memory_order_relaxed);
  size_t applied_count = 0;
  if (!chunk.records.empty()) {
    WalRecoveryStats stats;
    uint64_t applied = applied_lsn();
    Status status;
    {
      // Identical discipline to a local writer: apply under the writer
      // mutex, then publish one MVCC version at an operation boundary.
      // Concurrent readers keep serving their pinned snapshots.
      std::lock_guard<std::mutex> lock(bp_->writer_mutex());
      status = durable::ApplyWalRecordsLocked(bp_.get(), chunk.records,
                                              &applied, &stats);
      bp_->PublishVersionLocked();
    }
    applied_count = stats.replayed_inserts + stats.replayed_deletes;
    applied_records_.fetch_add(applied_count, std::memory_order_relaxed);
    applied_lsn_.store(applied, std::memory_order_relaxed);
    BREP_RETURN_IF_ERROR(status);
  }
  // Everything visible was applied; only an append still in flight (torn
  // tail bytes) can be outstanding now.
  lag_.store(chunk.tail_pending ? 1 : 0, std::memory_order_relaxed);
  return applied_count;
}

Status ReplicaIndex::StartTailing(double interval_ms) {
  if (!(interval_ms > 0.0)) {
    return Status::InvalidArgument("interval_ms must be > 0");
  }
  std::lock_guard<std::mutex> lock(tail_mutex_);
  if (tail_thread_.joinable()) {
    return Status::FailedPrecondition(
        "this replica is already tailing; StopTailing() first");
  }
  tail_stop_ = false;
  tail_status_ = Status::Ok();
  tail_thread_ = std::thread([this, interval_ms] { TailLoop(interval_ms); });
  return Status::Ok();
}

void ReplicaIndex::TailLoop(double interval_ms) {
  const auto interval =
      std::chrono::duration<double, std::milli>(interval_ms);
  std::unique_lock<std::mutex> lock(tail_mutex_);
  while (!tail_stop_) {
    lock.unlock();
    auto polled = Poll();
    lock.lock();
    if (!polled.ok()) {
      // Sticky: a replica that fell behind (or read corrupt bytes) stops
      // applying rather than guessing; the state it serves stays a
      // consistent prefix of the primary's history.
      tail_status_ = polled.status();
      return;
    }
    if (tail_stop_) return;
    tail_cv_.wait_for(lock, interval, [this] { return tail_stop_; });
  }
}

void ReplicaIndex::StopTailing() {
  std::thread finished;
  {
    std::lock_guard<std::mutex> lock(tail_mutex_);
    tail_stop_ = true;
    finished = std::move(tail_thread_);
  }
  tail_cv_.notify_all();
  if (finished.joinable()) finished.join();
}

bool ReplicaIndex::tailing() const {
  std::lock_guard<std::mutex> lock(tail_mutex_);
  return tail_thread_.joinable() && tail_status_.ok() && !tail_stop_;
}

Status ReplicaIndex::tail_status() const {
  std::lock_guard<std::mutex> lock(tail_mutex_);
  return tail_status_;
}

std::string ReplicaIndex::Describe() const {
  return "replica(applied_lsn=" + std::to_string(applied_lsn()) +
         ", M=" + std::to_string(bp_->num_partitions()) +
         ", divergence=" + bp_->divergence().Name() +
         ", n=" + std::to_string(bp_->num_points()) +
         ", d=" + std::to_string(bp_->divergence().dim()) +
         ", exact, read-only)";
}

size_t ReplicaIndex::dim() const { return bp_->divergence().dim(); }

const BregmanDivergence* ReplicaIndex::QueryDivergence() const {
  return &bp_->divergence();
}
size_t ReplicaIndex::num_points() const { return bp_->num_points(); }

obs::MetricsSnapshot ReplicaIndex::Metrics() const {
  obs::MetricsSnapshot out;
  {
    std::lock_guard<std::mutex> lock(bp_->writer_mutex());
    out = bp_->CollectMetricsLocked();
  }
  out.AddGauge(obs::kReplicationLagLsnsGauge,
               double(replication_lag_lsns()));
  out.AddCounter(obs::kReplicationAppliedTotal,
                 applied_records_.load(std::memory_order_relaxed));
  out.AddCounter(obs::kReplicationPollsTotal,
                 polls_.load(std::memory_order_relaxed));
  out.AddCounter(obs::kReplicationResetsTotal,
                 resets_.load(std::memory_order_relaxed));
  out.Sort();
  return out;
}

std::vector<obs::QueryTraceEntry> ReplicaIndex::SlowQueries() const {
  return bp_->trace_log().Snapshot();
}

StatusOr<std::vector<Neighbor>> ReplicaIndex::KnnImpl(
    std::span<const double> y, size_t k, Stats* stats) const {
  QueryStats qs;
  auto result = bp_->KnnSearch(y, k, &qs);
  stats->Add(qs);
  return result;
}

StatusOr<std::vector<uint32_t>> ReplicaIndex::RangeImpl(
    std::span<const double> y, double radius, Stats* stats) const {
  QueryStats qs;
  auto result = engine_->RangeSearch(y, radius, &qs);
  stats->Add(qs);
  return result;
}

}  // namespace brep
