#ifndef BREP_OBS_METRICS_H_
#define BREP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// The observability core: named counters, gauges, and log-bucketed latency
/// histograms, collected into immutable snapshots for exposition.
///
/// Hot-path contract: Record()/Add() are lock-free -- a handful of relaxed
/// atomic RMWs on a cache-line-aligned stripe -- so instrumentation can sit
/// inside the query and WAL fast paths without serializing them. The design
/// follows EngineLaneStats: contributors write to per-stripe slots padded to
/// a cache line (no false sharing), and the stripes are merged only at
/// Snapshot() time. Unlike the engine aggregator, snapshots here are safe
/// CONCURRENTLY with recording (relaxed atomics, monotone counters), so a
/// metrics poller never has to quiesce the serving threads; a snapshot taken
/// mid-storm is a consistent-enough view (each cell individually atomic,
/// cells mutually torn by at most the in-flight operations).

namespace brep::obs {

/// Stripes per metric. Contributors hash (or are assigned) onto a stripe;
/// more stripes = less RMW contention, more merge work at snapshot time.
inline constexpr size_t kStripes = 8;

/// Latency histogram buckets. Bucket 0 counts samples below 1 microsecond;
/// bucket i >= 1 counts [2^(i-1), 2^i) microseconds; the last bucket also
/// absorbs anything beyond its bound (~2.3 hours), so no sample is dropped.
inline constexpr size_t kHistogramBuckets = 34;

/// Stable stripe id for the calling thread (a global creation-order
/// ticket), used by the implicit-stripe Record()/Add() overloads. Exposed
/// so call sites that record several metrics for one event can pin them to
/// one stripe explicitly.
size_t CurrentThreadStripe();

/// Immutable merged view of a LatencyHistogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_ms = 0.0;
  double max_ms = 0.0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Upper bound (exclusive, in ms) of bucket `i`; the last bucket's bound
  /// is nominal (it also holds the overflow).
  static double BucketUpperMs(size_t i);

  /// Estimated p-th percentile (p in [0, 100]) in ms: linear interpolation
  /// within the covering log bucket, clamped to the observed maximum (so
  /// p100 is exact and a one-sample histogram reports that sample). 0 when
  /// empty.
  double Percentile(double p) const;

  double MeanMs() const { return count > 0 ? sum_ms / double(count) : 0.0; }

  /// The distribution recorded between `before` and this snapshot:
  /// bucket-, count- and sum-wise difference. `before` must be an earlier
  /// snapshot of the SAME histogram (counts are monotone; a mismatched
  /// pair clamps to zero rather than underflowing). max_ms is kept from
  /// this snapshot -- a maximum cannot be differenced -- so the delta's
  /// percentile clamp is an upper bound.
  HistogramSnapshot Since(const HistogramSnapshot& before) const;
};

/// Striped, lock-free latency histogram (see file comment). Record() costs
/// two relaxed fetch_adds plus a relaxed max update.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Record on this thread's stripe (stable per thread).
  void Record(double ms) { RecordStripe(ThisThreadStripe(), ms); }

  /// Record on an explicit stripe -- engine lanes pass their lane id so a
  /// lane never shares a stripe with another lane of the same pool.
  void RecordStripe(size_t stripe, double ms);

  /// Merge every stripe. Safe concurrently with Record().
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum_ns{0};
    std::atomic<uint64_t> max_ns{0};
  };

  static size_t ThisThreadStripe();

  std::array<Stripe, kStripes> stripes_;
};

/// Striped, lock-free monotone counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) { AddStripe(ThisThreadStripe(), n); }
  void AddStripe(size_t stripe, uint64_t n) {
    stripes_[stripe % kStripes].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };

  static size_t ThisThreadStripe();

  std::array<Stripe, kStripes> stripes_;
};

/// A last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time view of a metric family, sorted by name (Sort()), rendered
/// by obs/exposition. Collectors may also append component-owned metrics
/// (pager latencies, WAL histograms) that never lived in a registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  void AddCounter(std::string name, uint64_t value) {
    counters.emplace_back(std::move(name), value);
  }
  void AddGauge(std::string name, double value) {
    gauges.emplace_back(std::move(name), value);
  }
  void AddHistogram(std::string name, HistogramSnapshot h) {
    histograms.emplace_back(std::move(name), h);
  }

  /// nullptr when absent.
  const uint64_t* FindCounter(std::string_view name) const;
  const double* FindGauge(std::string_view name) const;
  const HistogramSnapshot* FindHistogram(std::string_view name) const;

  /// Order each family by name, for stable exposition output.
  void Sort();
};

/// Named-metric owner with get-or-create semantics. Lookups take a mutex;
/// hot paths are expected to resolve their metrics ONCE (at registration)
/// and record through the returned references, which stay valid for the
/// registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name);

  /// Snapshot every registered metric, sorted by name. Safe concurrently
  /// with recording.
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace brep::obs

#endif  // BREP_OBS_METRICS_H_
