#ifndef BREP_OBS_EXPOSITION_H_
#define BREP_OBS_EXPOSITION_H_

#include <string>

#include "obs/metrics.h"

/// \file
/// Rendering a MetricsSnapshot for the outside world, two ways:
///
///  * RenderPrometheus: the text exposition format scrapers speak --
///    counters and gauges as plain samples, histograms as summaries
///    (quantile series + _sum/_count/_max). Deterministic: families are
///    emitted in sorted name order with fixed number formatting, so a
///    snapshot renders to byte-identical text (the golden test pins it).
///
///  * RenderJson: the same content as a JSON document (counters/gauges as
///    name->number maps, histograms with count/sum/max/percentiles and the
///    non-empty buckets), for tools/brep_stats and bench emitters.

namespace brep::obs {

/// Prometheus text exposition. Metric names are used as-is (the collector
/// emits valid snake_case names); no labels other than `quantile`.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// JSON document:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count": n, "sum_ms": s, "max_ms": m,
///                            "p50": ..., "p90": ..., "p99": ...,
///                            "buckets": [[upper_ms, count], ...]}, ...}}
/// `indent` > 0 pretty-prints with that many spaces per level.
std::string RenderJson(const MetricsSnapshot& snapshot, int indent = 2);

/// Deterministic number formatting shared by both renderers (and the bench
/// JSON emitter): integral values print with no decimal point or exponent;
/// everything else prints shortest-of-%.6g.
std::string FormatMetricNumber(double value);

}  // namespace brep::obs

#endif  // BREP_OBS_EXPOSITION_H_
