#include "obs/index_metrics.h"

#include "core/stats.h"

namespace brep::obs {

IndexMetrics RegisterIndexMetrics(MetricRegistry& registry) {
  IndexMetrics im;
  im.knn_queries = &registry.GetCounter(kKnnQueriesTotal);
  im.range_queries = &registry.GetCounter(kRangeQueriesTotal);
  im.candidates = &registry.GetCounter(kCandidatesTotal);
  im.nodes_visited = &registry.GetCounter(kNodesVisitedTotal);
  im.leaves_visited = &registry.GetCounter(kLeavesVisitedTotal);
  im.points_evaluated = &registry.GetCounter(kPointsEvaluatedTotal);
  im.knn_latency = &registry.GetHistogram(kKnnLatencyMs);
  im.range_latency = &registry.GetHistogram(kRangeLatencyMs);
  im.bound_latency = &registry.GetHistogram(kBoundLatencyMs);
  im.filter_latency = &registry.GetHistogram(kFilterLatencyMs);
  im.refine_latency = &registry.GetHistogram(kRefineLatencyMs);
  im.insert_latency = &registry.GetHistogram(kInsertLatencyMs);
  im.delete_latency = &registry.GetHistogram(kDeleteLatencyMs);
  im.snapshot_publishes = &registry.GetCounter(kSnapshotPublishesTotal);
  im.snapshot_publish_latency =
      &registry.GetHistogram(kSnapshotPublishLatencyMs);
  im.joins = &registry.GetCounter(kJoinsTotal);
  im.join_rows = &registry.GetCounter(kJoinRowsTotal);
  im.join_node_pairs_visited =
      &registry.GetCounter(kJoinNodePairsVisitedTotal);
  im.join_node_pairs_pruned = &registry.GetCounter(kJoinNodePairsPrunedTotal);
  im.join_leaf_blocks = &registry.GetCounter(kJoinLeafBlocksTotal);
  im.join_latency = &registry.GetHistogram(kJoinLatencyMs);
  im.join_sample_recall = &registry.GetGauge(kJoinSampleRecallGauge);
  return im;
}

void RecordQuery(const IndexMetrics& im, TraceLog& trace,
                 const QueryStats& qs, const QueryRecordContext& ctx,
                 size_t stripe) {
  Counter* const op_counter =
      ctx.op == 'k' ? im.knn_queries : im.range_queries;
  op_counter->AddStripe(stripe, 1);
  im.candidates->AddStripe(stripe, qs.candidates);
  im.nodes_visited->AddStripe(stripe, qs.nodes_visited);
  im.leaves_visited->AddStripe(stripe, qs.leaves_visited);
  im.points_evaluated->AddStripe(stripe, qs.points_evaluated);

  LatencyHistogram* const op_latency =
      ctx.op == 'k' ? im.knn_latency : im.range_latency;
  op_latency->RecordStripe(stripe, qs.total_ms);
  if (ctx.op == 'k') im.bound_latency->RecordStripe(stripe, qs.bound_ms);
  im.filter_latency->RecordStripe(stripe, qs.filter_ms);
  im.refine_latency->RecordStripe(stripe, qs.refine_ms);

  if (qs.total_ms < trace.threshold_ms()) return;  // cheap early out
  QueryTraceEntry entry;
  entry.op = ctx.op;
  entry.k = ctx.k;
  entry.radius = ctx.radius;
  entry.results = ctx.results;
  entry.bound_ms = qs.bound_ms;
  entry.filter_ms = qs.filter_ms;
  entry.refine_ms = qs.refine_ms;
  entry.total_ms = qs.total_ms;
  entry.io_reads = qs.io_reads;
  entry.candidates = qs.candidates;
  entry.nodes_visited = qs.nodes_visited;
  entry.leaves_visited = qs.leaves_visited;
  entry.points_evaluated = qs.points_evaluated;
  entry.pool_hits = qs.pool_hits;
  entry.pool_misses = qs.pool_misses;
  trace.Record(entry);
}

}  // namespace brep::obs
