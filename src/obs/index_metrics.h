#ifndef BREP_OBS_INDEX_METRICS_H_
#define BREP_OBS_INDEX_METRICS_H_

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

/// \file
/// The index's metric vocabulary: every name the serving layers export,
/// plus the pre-resolved handle bundle (IndexMetrics) the hot paths record
/// through. Names are plain snake_case with Prometheus-conventional
/// suffixes (_total for counters, _ms for latency histograms); README's
/// "Observability" chapter documents each one's semantics.

namespace brep {
struct QueryStats;
}

namespace brep::obs {

// Registry-owned (live in BrePartition's MetricRegistry; recorded on the
// query/update hot paths, shared by every engine over one index).
inline constexpr char kKnnQueriesTotal[] = "brep_knn_queries_total";
inline constexpr char kRangeQueriesTotal[] = "brep_range_queries_total";
inline constexpr char kCandidatesTotal[] = "brep_candidates_total";
inline constexpr char kNodesVisitedTotal[] = "brep_nodes_visited_total";
inline constexpr char kLeavesVisitedTotal[] = "brep_leaves_visited_total";
inline constexpr char kPointsEvaluatedTotal[] = "brep_points_evaluated_total";
inline constexpr char kKnnLatencyMs[] = "brep_knn_latency_ms";
inline constexpr char kRangeLatencyMs[] = "brep_range_latency_ms";
inline constexpr char kBoundLatencyMs[] = "brep_bound_latency_ms";
inline constexpr char kFilterLatencyMs[] = "brep_filter_latency_ms";
inline constexpr char kRefineLatencyMs[] = "brep_refine_latency_ms";
inline constexpr char kInsertLatencyMs[] = "brep_insert_latency_ms";
inline constexpr char kDeleteLatencyMs[] = "brep_delete_latency_ms";
inline constexpr char kSnapshotPublishesTotal[] =
    "brep_snapshot_publishes_total";
inline constexpr char kSnapshotPublishLatencyMs[] =
    "brep_snapshot_publish_latency_ms";
// kNN-join lane (SearchIndex::KnnJoin over a dual-tree backend). The
// node-pair counters are the amortization instrument: visited under the
// dual-tree descent versus the N-single-queries node visits.
inline constexpr char kJoinsTotal[] = "brep_joins_total";
inline constexpr char kJoinRowsTotal[] = "brep_join_rows_total";
inline constexpr char kJoinNodePairsVisitedTotal[] =
    "brep_join_node_pairs_visited_total";
inline constexpr char kJoinNodePairsPrunedTotal[] =
    "brep_join_node_pairs_pruned_total";
inline constexpr char kJoinLeafBlocksTotal[] = "brep_join_leaf_blocks_total";
inline constexpr char kJoinLatencyMs[] = "brep_join_latency_ms";
/// Measured recall of the most recent sampled join (JoinOptions::
/// measure_recall); stays at its default 0 until one is measured.
inline constexpr char kJoinSampleRecallGauge[] = "brep_join_sample_recall";

// Assembled at snapshot time from component-owned state (index gauges,
// update totals, pager/pool/WAL/recovery counters and histograms).
inline constexpr char kPointsGauge[] = "brep_points";
inline constexpr char kIdSpaceGauge[] = "brep_id_space";
inline constexpr char kPartitionsGauge[] = "brep_partitions";
/// Kernel backend serving divergence/bound batches: 0 = unrolled scalar,
/// 1 = AVX2 (see simd::KernelBackend). Lets an operator confirm from the
/// metrics endpoint alone that a deployment actually dispatches SIMD
/// (BREP_SIMD=off, a non-AVX2 host, or a BREP_SIMD=OFF build all read 0).
inline constexpr char kSimdKernelGauge[] = "brep_simd_kernel_backend";
inline constexpr char kPagesGauge[] = "brep_pages";
inline constexpr char kFreePagesGauge[] = "brep_free_pages";
inline constexpr char kInsertsTotal[] = "brep_inserts_total";
inline constexpr char kDeletesTotal[] = "brep_deletes_total";
inline constexpr char kPagerReadsTotal[] = "brep_pager_reads_total";
inline constexpr char kPagerWritesTotal[] = "brep_pager_writes_total";
inline constexpr char kIoReadLatencyMs[] = "brep_io_read_latency_ms";
inline constexpr char kIoWriteLatencyMs[] = "brep_io_write_latency_ms";
inline constexpr char kIoSyncLatencyMs[] = "brep_io_sync_latency_ms";
inline constexpr char kFsyncsTotal[] = "brep_file_fsyncs_total";
inline constexpr char kFdatasyncsTotal[] = "brep_file_fdatasyncs_total";
inline constexpr char kPoolHitsTotal[] = "brep_pool_hits_total";
inline constexpr char kPoolMissesTotal[] = "brep_pool_misses_total";
inline constexpr char kPoolEvictionsTotal[] = "brep_pool_evictions_total";
inline constexpr char kPoolResidentGauge[] = "brep_pool_resident_pages";
inline constexpr char kPoolCapacityGauge[] = "brep_pool_capacity_pages";
inline constexpr char kWalAppendsTotal[] = "brep_wal_appends_total";
inline constexpr char kWalFsyncsTotal[] = "brep_wal_fsyncs_total";
inline constexpr char kWalAppendedBytesTotal[] = "brep_wal_appended_bytes_total";
inline constexpr char kWalAppendLatencyMs[] = "brep_wal_append_latency_ms";
inline constexpr char kWalFsyncLatencyMs[] = "brep_wal_fsync_latency_ms";
inline constexpr char kWalLastLsnGauge[] = "brep_wal_last_lsn";
inline constexpr char kWalDurableLsnGauge[] = "brep_wal_durable_lsn";
inline constexpr char kRecoveryReplayedInserts[] =
    "brep_recovery_replayed_inserts_total";
inline constexpr char kRecoveryReplayedDeletes[] =
    "brep_recovery_replayed_deletes_total";
inline constexpr char kRecoverySkippedRecords[] =
    "brep_recovery_skipped_records_total";
inline constexpr char kRecoveryDroppedTailBytes[] =
    "brep_recovery_dropped_tail_bytes";
inline constexpr char kRecoveryReplayMsGauge[] = "brep_recovery_replay_ms";
inline constexpr char kSlowQueriesTotal[] = "brep_slow_queries_total";
inline constexpr char kSlowThresholdGauge[] = "brep_slow_query_threshold_ms";
// MVCC snapshot lifecycle (assembled from the writer's version chain).
inline constexpr char kSnapshotLiveVersionsGauge[] =
    "brep_snapshot_live_versions";
inline constexpr char kSnapshotOldestPinAgeGauge[] =
    "brep_snapshot_oldest_pin_age_epochs";
inline constexpr char kSnapshotCowRetainedPagesGauge[] =
    "brep_snapshot_cow_retained_pages";

// Scale-out tier (ShardedIndex sums its shards' series by name and adds
// these; ReplicaIndex tracks its tailing progress with them).
inline constexpr char kShardsGauge[] = "brep_shards";
inline constexpr char kShardScatterLatencyMs[] = "brep_shard_scatter_latency_ms";
inline constexpr char kShardMergeLatencyMs[] = "brep_shard_merge_latency_ms";
inline constexpr char kReplicationLagLsnsGauge[] = "brep_replication_lag_lsns";
inline constexpr char kReplicationAppliedTotal[] =
    "brep_replication_applied_records_total";
inline constexpr char kReplicationPollsTotal[] = "brep_replication_polls_total";
inline constexpr char kReplicationResetsTotal[] =
    "brep_replication_resets_total";

/// Handles into one index's registry, resolved once at construction so the
/// hot paths never pay the registry's name lookup.
struct IndexMetrics {
  Counter* knn_queries = nullptr;
  Counter* range_queries = nullptr;
  Counter* candidates = nullptr;
  Counter* nodes_visited = nullptr;
  Counter* leaves_visited = nullptr;
  Counter* points_evaluated = nullptr;
  LatencyHistogram* knn_latency = nullptr;
  LatencyHistogram* range_latency = nullptr;
  LatencyHistogram* bound_latency = nullptr;
  LatencyHistogram* filter_latency = nullptr;
  LatencyHistogram* refine_latency = nullptr;
  LatencyHistogram* insert_latency = nullptr;
  LatencyHistogram* delete_latency = nullptr;
  Counter* snapshot_publishes = nullptr;
  LatencyHistogram* snapshot_publish_latency = nullptr;
  Counter* joins = nullptr;
  Counter* join_rows = nullptr;
  Counter* join_node_pairs_visited = nullptr;
  Counter* join_node_pairs_pruned = nullptr;
  Counter* join_leaf_blocks = nullptr;
  LatencyHistogram* join_latency = nullptr;
  Gauge* join_sample_recall = nullptr;
};

IndexMetrics RegisterIndexMetrics(MetricRegistry& registry);

/// Call-site context a QueryStats record does not carry.
struct QueryRecordContext {
  char op = 'k';        // 'k' or 'r'
  size_t k = 0;
  double radius = 0.0;
  size_t results = 0;
};

/// Record one finished query into the metric handles (counters + latency
/// histograms on stripe `stripe`) and, if it crosses the trace threshold,
/// into `trace`.
void RecordQuery(const IndexMetrics& im, TraceLog& trace,
                 const QueryStats& qs, const QueryRecordContext& ctx,
                 size_t stripe);

}  // namespace brep::obs

#endif  // BREP_OBS_INDEX_METRICS_H_
