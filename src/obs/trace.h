#ifndef BREP_OBS_TRACE_H_
#define BREP_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

/// \file
/// Per-operation trace spans and the ring-buffered slow-query log.
///
/// Every instrumented call (kNN, range, insert, delete) assembles one
/// QueryTraceEntry describing where its time went -- the bound/filter/refine
/// spans, WAL append + fsync wait for writes -- and how much work each phase
/// did (I/O reads, buffer-pool hits/misses, nodes, candidates). Entries
/// whose total latency crosses the log's threshold are kept in a bounded
/// ring (newest evicts oldest), so "what were the slowest recent calls and
/// why" is answerable without any external collector. The threshold check
/// is one relaxed atomic load, so tracing costs nothing until a call is
/// actually slow; a threshold of 0 traces everything (tests, walkthroughs).

namespace brep::obs {

/// One traced call's lifecycle.
struct QueryTraceEntry {
  /// Assigned by the TraceLog in admission order (1-based, lifetime).
  uint64_t seq = 0;
  /// 'k' kNN, 'r' range, 'i' insert, 'd' delete, 'j' kNN-join.
  char op = 'k';
  size_t k = 0;            // kNN / join
  double radius = 0.0;     // range
  size_t results = 0;      // neighbors / matches returned (1 for updates;
                           // R rows for joins)

  /// Span breakdown, milliseconds.
  double bound_ms = 0.0;
  double filter_ms = 0.0;
  double refine_ms = 0.0;
  double wal_append_ms = 0.0;  // updates under a WAL: encode + pwrite
  double wal_fsync_ms = 0.0;   // updates in kAlways mode: fsync wait
  double total_ms = 0.0;

  /// Work counters. For joins ('j'), nodes_visited / leaves_visited /
  /// points_evaluated hold the dual-tree node pairs visited, leaf blocks
  /// scanned and pair distances evaluated.
  uint64_t io_reads = 0;
  size_t candidates = 0;
  size_t nodes_visited = 0;
  size_t leaves_visited = 0;
  size_t points_evaluated = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  /// Joins only: node pairs cut by the pair lower bound.
  uint64_t node_pairs_pruned = 0;
};

/// Bounded ring of slow-call traces. Record() is concurrent-safe; entries
/// below the threshold never touch the mutex.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 128, double threshold_ms = 100.0)
      : threshold_ms_(threshold_ms), capacity_(capacity) {}

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  double threshold_ms() const {
    return threshold_ms_.load(std::memory_order_relaxed);
  }
  /// Calls with total_ms >= `ms` are admitted; 0 admits everything.
  void set_threshold_ms(double ms) {
    threshold_ms_.store(ms, std::memory_order_relaxed);
  }

  size_t capacity() const;
  /// Resize the ring, dropping oldest entries if shrinking below the
  /// current population.
  void set_capacity(size_t capacity);

  /// Admit `entry` if it crosses the threshold (its seq is assigned here).
  void Record(QueryTraceEntry entry);

  /// Ring contents, oldest first.
  std::vector<QueryTraceEntry> Snapshot() const;

  /// Lifetime count of admitted entries (including ones the ring has since
  /// evicted).
  uint64_t recorded_total() const {
    return recorded_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> threshold_ms_;
  std::atomic<uint64_t> recorded_{0};
  mutable std::mutex mu_;
  size_t capacity_;                  // guarded by mu_
  std::deque<QueryTraceEntry> ring_;  // guarded by mu_; back = newest
};

/// Multi-line human-readable walkthrough of one traced call: the span
/// timeline with per-phase shares, then the work counters.
std::string FormatQueryTrace(const QueryTraceEntry& entry);

}  // namespace brep::obs

#endif  // BREP_OBS_TRACE_H_
