#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace brep::obs {

namespace {

/// Stable small integer per thread, used to spread contributors across
/// stripes. A simple global ticket: threads get 0, 1, 2, ... in creation
/// order, so the common pools (engine lanes, flusher, pollers) land on
/// distinct stripes.
size_t ThreadStripeId() {
  static std::atomic<size_t> next{0};
  thread_local const size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t MsToNs(double ms) {
  if (!(ms > 0.0)) return 0;  // negative/NaN clamp to the first bucket
  const double ns = ms * 1e6;
  if (ns >= 9e18) return UINT64_C(9000000000000000000);
  return uint64_t(ns);
}

size_t BucketIndex(uint64_t ns) {
  // Bucket 0: < 1us. Bucket i >= 1: [2^(i-1), 2^i) us, overflow clamped
  // into the last bucket.
  const uint64_t us = ns / 1000;
  if (us == 0) return 0;
  const size_t bit = size_t(64 - __builtin_clzll(us));  // floor(log2(us)) + 1
  return std::min(bit, kHistogramBuckets - 1);
}

}  // namespace

size_t CurrentThreadStripe() { return ThreadStripeId(); }

double HistogramSnapshot::BucketUpperMs(size_t i) {
  // Bucket i's exclusive upper bound is 2^i microseconds (bucket 0: 1us).
  return std::ldexp(1.0, int(i)) * 1e-3;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * double(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (double(cum) + double(in_bucket) >= rank) {
      const double lo = i == 0 ? 0.0 : BucketUpperMs(i - 1);
      const double hi = BucketUpperMs(i);
      const double frac =
          std::clamp((rank - double(cum)) / double(in_bucket), 0.0, 1.0);
      // Linear interpolation within the covering log bucket; the observed
      // maximum caps the estimate (the last bucket holds overflow, and a
      // thin top bucket should not report its full width).
      return std::min(lo + (hi - lo) * frac, max_ms);
    }
    cum += in_bucket;
  }
  return max_ms;
}

HistogramSnapshot HistogramSnapshot::Since(
    const HistogramSnapshot& before) const {
  HistogramSnapshot out;
  for (size_t i = 0; i < buckets.size(); ++i) {
    out.buckets[i] =
        buckets[i] >= before.buckets[i] ? buckets[i] - before.buckets[i] : 0;
    out.count += out.buckets[i];
  }
  out.sum_ms = std::max(0.0, sum_ms - before.sum_ms);
  out.max_ms = max_ms;
  return out;
}

void LatencyHistogram::RecordStripe(size_t stripe, double ms) {
  Stripe& s = stripes_[stripe % kStripes];
  const uint64_t ns = MsToNs(ms);
  s.buckets[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
  s.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  uint64_t prev = s.max_ns.load(std::memory_order_relaxed);
  while (prev < ns && !s.max_ns.compare_exchange_weak(
                          prev, ns, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot out;
  uint64_t sum_ns = 0;
  uint64_t max_ns = 0;
  for (const Stripe& s : stripes_) {
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      const uint64_t c = s.buckets[i].load(std::memory_order_relaxed);
      out.buckets[i] += c;
      out.count += c;
    }
    sum_ns += s.sum_ns.load(std::memory_order_relaxed);
    max_ns = std::max(max_ns, s.max_ns.load(std::memory_order_relaxed));
  }
  out.sum_ms = double(sum_ns) * 1e-6;
  out.max_ms = double(max_ns) * 1e-6;
  return out;
}

size_t LatencyHistogram::ThisThreadStripe() { return CurrentThreadStripe(); }
size_t Counter::ThisThreadStripe() { return CurrentThreadStripe(); }

const uint64_t* MetricsSnapshot::FindCounter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

void MetricsSnapshot::Sort() {
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(counters.begin(), counters.end(), by_name);
  std::sort(gauges.begin(), gauges.end(), by_name);
  std::sort(histograms.begin(), histograms.end(), by_name);
}

Counter& MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;  // maps iterate sorted, so no Sort() needed here
  for (const auto& [name, c] : counters_) out.AddCounter(name, c->Value());
  for (const auto& [name, g] : gauges_) out.AddGauge(name, g->Value());
  for (const auto& [name, h] : histograms_) {
    out.AddHistogram(name, h->Snapshot());
  }
  return out;
}

}  // namespace brep::obs
