#include "obs/exposition.h"

#include <cmath>
#include <cstdio>

namespace brep::obs {

std::string FormatMetricNumber(double value) {
  char buf[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

namespace {

void AppendSample(std::string* out, const std::string& name, double value) {
  out->append(name);
  out->push_back(' ');
  out->append(FormatMetricNumber(value));
  out->push_back('\n');
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99};

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  MetricsSnapshot s = snapshot;
  s.Sort();
  std::string out;
  for (const auto& [name, value] : s.counters) {
    out.append("# TYPE ").append(name).append(" counter\n");
    AppendSample(&out, name, double(value));
  }
  for (const auto& [name, value] : s.gauges) {
    out.append("# TYPE ").append(name).append(" gauge\n");
    AppendSample(&out, name, value);
  }
  for (const auto& [name, h] : s.histograms) {
    out.append("# TYPE ").append(name).append(" summary\n");
    for (const double q : kQuantiles) {
      char qbuf[32];
      std::snprintf(qbuf, sizeof(qbuf), "%g", q);
      out.append(name).append("{quantile=\"").append(qbuf).append("\"} ");
      out.append(FormatMetricNumber(h.Percentile(q * 100.0)));
      out.push_back('\n');
    }
    AppendSample(&out, name + "_sum", h.sum_ms);
    AppendSample(&out, name + "_count", double(h.count));
    AppendSample(&out, name + "_max", h.max_ms);
  }
  return out;
}

namespace {

/// Minimal JSON writer with optional pretty-printing. Metric names are
/// snake_case identifiers, so escaping only needs the standard minimum.
class JsonWriter {
 public:
  explicit JsonWriter(int indent) : indent_(indent) {}

  std::string Take() { return std::move(out_); }

  void BeginObject() {
    Prefix();
    out_.push_back('{');
    ++depth_;
    first_ = true;
  }
  void EndObject() {
    --depth_;
    if (!first_) NewlineIndent();
    out_.push_back('}');
    first_ = false;
  }
  void Key(const std::string& k) {
    Prefix();
    NewlineIndent();
    AppendString(k);
    out_.push_back(':');
    if (indent_ > 0) out_.push_back(' ');
    value_pending_ = true;
  }
  void Number(double v) {
    Prefix();
    out_.append(FormatMetricNumber(v));
    first_ = false;
  }
  void BeginArray() {
    Prefix();
    out_.push_back('[');
    ++depth_;
    first_ = true;
  }
  void EndArray() {
    --depth_;
    out_.push_back(']');
    first_ = false;
  }
 private:
  void Prefix() {
    if (value_pending_) {
      value_pending_ = false;
      return;
    }
    if (!first_) out_.push_back(',');
    first_ = false;
  }
  void NewlineIndent() {
    if (indent_ <= 0) return;
    out_.push_back('\n');
    out_.append(size_t(depth_) * size_t(indent_), ' ');
  }
  void AppendString(const std::string& s) {
    out_.push_back('"');
    for (const char c : s) {
      if (c == '"' || c == '\\') out_.push_back('\\');
      out_.push_back(c);
    }
    out_.push_back('"');
  }

  std::string out_;
  int indent_;
  int depth_ = 0;
  bool first_ = true;
  bool value_pending_ = false;
};

}  // namespace

std::string RenderJson(const MetricsSnapshot& snapshot, int indent) {
  MetricsSnapshot s = snapshot;
  s.Sort();
  JsonWriter w(indent);
  w.BeginObject();

  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : s.counters) {
    w.Key(name);
    w.Number(double(value));
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : s.gauges) {
    w.Key(name);
    w.Number(value);
  }
  w.EndObject();

  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : s.histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Number(double(h.count));
    w.Key("sum_ms");
    w.Number(h.sum_ms);
    w.Key("max_ms");
    w.Number(h.max_ms);
    w.Key("mean_ms");
    w.Number(h.MeanMs());
    w.Key("p50");
    w.Number(h.Percentile(50));
    w.Key("p90");
    w.Number(h.Percentile(90));
    w.Key("p99");
    w.Number(h.Percentile(99));
    w.Key("buckets");
    w.BeginArray();
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      w.BeginArray();
      w.Number(HistogramSnapshot::BucketUpperMs(i));
      w.Number(double(h.buckets[i]));
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  std::string out = w.Take();
  out.push_back('\n');
  return out;
}

}  // namespace brep::obs
