#include "obs/trace.h"

#include <cstdio>

namespace brep::obs {

size_t TraceLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void TraceLog::Record(QueryTraceEntry entry) {
  if (entry.total_ms < threshold_ms_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  entry.seq = recorded_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(entry));
}

std::vector<QueryTraceEntry> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

namespace {

const char* OpName(char op) {
  switch (op) {
    case 'k': return "knn";
    case 'r': return "range";
    case 'i': return "insert";
    case 'd': return "delete";
    case 'j': return "knn-join";
    default: return "?";
  }
}

void AppendSpan(std::string* out, const char* name, double ms,
                double total_ms) {
  if (ms <= 0.0) return;
  char buf[128];
  const double share = total_ms > 0.0 ? 100.0 * ms / total_ms : 0.0;
  std::snprintf(buf, sizeof(buf), "  %-12s %10.3f ms  (%5.1f%%)\n", name, ms,
                share);
  out->append(buf);
}

}  // namespace

std::string FormatQueryTrace(const QueryTraceEntry& e) {
  std::string out;
  char buf[256];
  if (e.op == 'k') {
    std::snprintf(buf, sizeof(buf),
                  "trace #%llu: knn(k=%zu) -> %zu results in %.3f ms\n",
                  (unsigned long long)e.seq, e.k, e.results, e.total_ms);
  } else if (e.op == 'j') {
    std::snprintf(buf, sizeof(buf),
                  "trace #%llu: knn-join(k=%zu) over %zu rows in %.3f ms "
                  "(node pairs: %zu visited, %llu pruned)\n",
                  (unsigned long long)e.seq, e.k, e.results, e.total_ms,
                  e.nodes_visited, (unsigned long long)e.node_pairs_pruned);
  } else if (e.op == 'r') {
    std::snprintf(buf, sizeof(buf),
                  "trace #%llu: range(radius=%g) -> %zu results in %.3f ms\n",
                  (unsigned long long)e.seq, e.radius, e.results, e.total_ms);
  } else {
    std::snprintf(buf, sizeof(buf), "trace #%llu: %s in %.3f ms\n",
                  (unsigned long long)e.seq, OpName(e.op), e.total_ms);
  }
  out.append(buf);

  AppendSpan(&out, "bound", e.bound_ms, e.total_ms);
  AppendSpan(&out, "filter", e.filter_ms, e.total_ms);
  AppendSpan(&out, "refine", e.refine_ms, e.total_ms);
  AppendSpan(&out, "wal-append", e.wal_append_ms, e.total_ms);
  AppendSpan(&out, "wal-fsync", e.wal_fsync_ms, e.total_ms);
  const double accounted = e.bound_ms + e.filter_ms + e.refine_ms +
                           e.wal_append_ms + e.wal_fsync_ms;
  AppendSpan(&out, "other", e.total_ms - accounted, e.total_ms);

  std::snprintf(buf, sizeof(buf),
                "  work: io_reads=%llu pool=%llu/%llu hit/miss "
                "nodes=%zu leaves=%zu candidates=%zu evaluated=%zu\n",
                (unsigned long long)e.io_reads,
                (unsigned long long)e.pool_hits,
                (unsigned long long)e.pool_misses, e.nodes_visited,
                e.leaves_visited, e.candidates, e.points_evaluated);
  out.append(buf);
  return out;
}

}  // namespace brep::obs
