#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace brep {

Matrix MakeMixture(Rng& rng, const MixtureSpec& spec) {
  BREP_CHECK(spec.n > 0 && spec.d > 0 && spec.num_clusters > 0);
  const size_t k = spec.num_clusters;
  const size_t r = spec.latent_factors;

  // Cluster centers.
  Matrix centers(k, spec.d);
  for (size_t c = 0; c < k; ++c) {
    auto row = centers.MutableRow(c);
    for (size_t j = 0; j < spec.d; ++j) {
      row[j] = rng.Uniform(spec.center_lo, spec.center_hi);
    }
  }

  // Per-cluster loading matrices (d x r), fixed so that within a cluster the
  // same dimensions co-vary -- this is the correlation signal PCCP uses.
  std::vector<Matrix> loadings;
  if (r > 0) {
    loadings.reserve(k);
    for (size_t c = 0; c < k; ++c) {
      Matrix load(spec.d, r);
      for (size_t j = 0; j < spec.d; ++j) {
        auto row = load.MutableRow(j);
        for (size_t f = 0; f < r; ++f) {
          row[f] = rng.Gaussian(0.0, spec.factor_scale / std::sqrt(double(r)));
        }
      }
      loadings.push_back(std::move(load));
    }
  }

  Matrix out(spec.n, spec.d);
  std::vector<double> z(r);
  for (size_t i = 0; i < spec.n; ++i) {
    const size_t c = static_cast<size_t>(rng.NextBelow(k));
    auto row = out.MutableRow(i);
    const auto center = centers.Row(c);
    for (size_t f = 0; f < r; ++f) z[f] = rng.NextGaussian();
    for (size_t j = 0; j < spec.d; ++j) {
      double v = center[j] + rng.Gaussian(0.0, spec.cluster_std);
      if (r > 0) {
        const auto lj = loadings[c].Row(j);
        for (size_t f = 0; f < r; ++f) v += lj[f] * z[f];
      }
      row[j] = v;
    }
    if (spec.positive) {
      for (size_t j = 0; j < spec.d; ++j) {
        row[j] = spec.positive_scale * std::exp(row[j]);
      }
    } else if (spec.clamp_nonnegative) {
      for (size_t j = 0; j < spec.d; ++j) row[j] = std::max(row[j], 0.0);
    }
  }
  return out;
}

Matrix MakeEnergyProfile(Rng& rng, const EnergyProfileSpec& spec) {
  BREP_CHECK(spec.n > 0 && spec.d > 0);
  BREP_CHECK(spec.num_groups >= 1 && spec.num_groups <= spec.d);
  BREP_CHECK(spec.profile_lo > 0.0 && spec.profile_hi >= spec.profile_lo);
  const size_t k = spec.num_clusters;
  const size_t g_count = spec.num_groups;

  // Per-cluster, per-group log-profiles.
  Matrix log_profiles(k, g_count);
  for (size_t c = 0; c < k; ++c) {
    auto row = log_profiles.MutableRow(c);
    for (size_t g = 0; g < g_count; ++g) {
      row[g] = std::log(rng.Uniform(spec.profile_lo, spec.profile_hi));
    }
  }

  Matrix out(spec.n, spec.d);
  const size_t dims_per_group = (spec.d + g_count - 1) / g_count;
  for (size_t i = 0; i < spec.n; ++i) {
    const size_t c = static_cast<size_t>(rng.NextBelow(k));
    const double level = rng.Gaussian(spec.level_mean, spec.level_std);
    auto row = out.MutableRow(i);
    for (size_t g = 0; g < g_count; ++g) {
      const double group_level = level + log_profiles.At(c, g) +
                                 rng.Gaussian(0.0, spec.group_noise);
      const size_t lo = g * dims_per_group;
      const size_t hi = std::min(spec.d, lo + dims_per_group);
      for (size_t j = lo; j < hi; ++j) {
        const double v = group_level + rng.Gaussian(0.0, spec.dim_noise);
        row[j] = spec.log_domain ? v : std::exp(v);
      }
    }
  }
  return out;
}

Matrix MakeIidNormal(Rng& rng, size_t n, size_t d, double mean,
                     double stddev) {
  Matrix out(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = out.MutableRow(i);
    for (size_t j = 0; j < d; ++j) row[j] = rng.Gaussian(mean, stddev);
  }
  return out;
}

Matrix MakeIidUniform(Rng& rng, size_t n, size_t d, double lo, double hi) {
  Matrix out(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = out.MutableRow(i);
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform(lo, hi);
  }
  return out;
}

Matrix MakeAudioLike(Rng& rng, size_t n, size_t d) {
  // Audio spectral frames (paired with the exponential distance): log-energy
  // features with a strong per-frame loudness level and correlated frequency
  // bands.
  EnergyProfileSpec spec;
  spec.n = n;
  spec.d = d;
  spec.num_clusters = 24;
  spec.num_groups = std::max<size_t>(2, d / 16);
  spec.level_mean = -2.2;
  spec.level_std = 0.45;
  spec.profile_lo = 0.85;
  spec.profile_hi = 1.2;
  spec.group_noise = 0.05;
  spec.log_domain = true;
  return MakeEnergyProfile(rng, spec);
}

Matrix MakeFontsLike(Rng& rng, size_t n, size_t d) {
  // Font glyph statistics (paired with Itakura-Saito): strictly positive
  // energies with per-glyph ink level and strongly correlated pixel groups.
  EnergyProfileSpec spec;
  spec.n = n;
  spec.d = d;
  spec.num_clusters = 32;
  spec.num_groups = std::max<size_t>(2, d / 25);
  spec.level_mean = 1.2;
  spec.level_std = 0.5;
  spec.profile_lo = 0.78;
  spec.profile_hi = 1.3;
  spec.log_domain = false;
  return MakeEnergyProfile(rng, spec);
}

Matrix MakeDeepLike(Rng& rng, size_t n, size_t d) {
  // CNN descriptors (exponential distance): tighter clusters, moderate
  // activation scale spread.
  EnergyProfileSpec spec;
  spec.n = n;
  spec.d = d;
  spec.num_clusters = 40;
  spec.num_groups = std::max<size_t>(2, d / 16);
  spec.level_mean = -1.8;
  spec.level_std = 0.4;
  spec.profile_lo = 0.88;
  spec.profile_hi = 1.15;
  spec.dim_noise = 0.04;
  spec.log_domain = true;
  return MakeEnergyProfile(rng, spec);
}

Matrix MakeSiftLike(Rng& rng, size_t n, size_t d) {
  // SIFT gradient histograms (exponential distance): log-energies scaled
  // down from the 0..218 integer range, many visual-word clusters.
  EnergyProfileSpec spec;
  spec.n = n;
  spec.d = d;
  spec.num_clusters = 48;
  spec.num_groups = std::max<size_t>(2, d / 16);
  spec.level_mean = -2.0;
  spec.level_std = 0.45;
  spec.profile_lo = 0.85;
  spec.profile_hi = 1.2;
  spec.group_noise = 0.06;
  spec.dim_noise = 0.05;
  spec.log_domain = true;
  return MakeEnergyProfile(rng, spec);
}

Matrix MakeQueries(Rng& rng, const Matrix& data, size_t count,
                   double noise_std, bool keep_positive) {
  BREP_CHECK(!data.empty());
  // Per-dimension stddev so perturbations respect each dimension's scale.
  const size_t d = data.cols();
  std::vector<double> dim_std(d, 0.0);
  {
    std::vector<double> mean(d, 0.0);
    for (size_t i = 0; i < data.rows(); ++i) {
      const auto row = data.Row(i);
      for (size_t j = 0; j < d; ++j) mean[j] += row[j];
    }
    for (size_t j = 0; j < d; ++j) mean[j] /= double(data.rows());
    for (size_t i = 0; i < data.rows(); ++i) {
      const auto row = data.Row(i);
      for (size_t j = 0; j < d; ++j) {
        dim_std[j] += (row[j] - mean[j]) * (row[j] - mean[j]);
      }
    }
    for (size_t j = 0; j < d; ++j) {
      dim_std[j] = std::sqrt(dim_std[j] / double(data.rows()));
    }
  }

  Matrix queries(count, d);
  for (size_t q = 0; q < count; ++q) {
    const size_t src = static_cast<size_t>(rng.NextBelow(data.rows()));
    const auto row = data.Row(src);
    auto dst = queries.MutableRow(q);
    for (size_t j = 0; j < d; ++j) {
      double v = row[j] + rng.Gaussian(0.0, noise_std * dim_std[j]);
      if (keep_positive) {
        // Stay strictly inside the positive orthant for Itakura-Saito.
        v = std::max(v, 0.05 * (std::fabs(row[j]) + 1e-6));
      }
      dst[j] = v;
    }
  }
  return queries;
}

}  // namespace brep
