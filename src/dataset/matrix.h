#ifndef BREP_DATASET_MATRIX_H_
#define BREP_DATASET_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace brep {

/// Dense row-major matrix of doubles: `rows` points of dimensionality `cols`.
///
/// This is the dataset container used throughout the library. Points are
/// identified by their row index (a stable 32-bit id everywhere else).
class Matrix {
 public:
  Matrix() = default;

  /// Allocate a rows x cols matrix of zeros.
  Matrix(size_t rows, size_t cols);

  /// Wrap existing data (copied). `data.size()` must equal rows * cols.
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// Immutable view of row i.
  std::span<const double> Row(size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  /// Mutable view of row i.
  std::span<double> MutableRow(size_t i) {
    return {data_.data() + i * cols_, cols_};
  }

  double At(size_t i, size_t j) const { return data_[i * cols_ + j]; }
  double& At(size_t i, size_t j) { return data_[i * cols_ + j]; }

  const std::vector<double>& data() const { return data_; }

  /// Copy of column j as a contiguous vector (used by correlation analysis).
  std::vector<double> Column(size_t j) const;

  /// New matrix whose columns are `column_indices` of this matrix, in order.
  /// This is how per-subspace data is materialized after partitioning.
  Matrix GatherColumns(std::span<const size_t> column_indices) const;

  /// New matrix whose rows are `row_indices` of this matrix, in order.
  Matrix GatherRows(std::span<const size_t> row_indices) const;

  /// Keep only the first `new_rows` rows (cheap truncation for size sweeps).
  Matrix Truncated(size_t new_rows) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace brep

#endif  // BREP_DATASET_MATRIX_H_
