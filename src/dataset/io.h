#ifndef BREP_DATASET_IO_H_
#define BREP_DATASET_IO_H_

#include <optional>
#include <string>

#include "dataset/matrix.h"

namespace brep {

/// \file
/// Dataset (de)serialization. Three formats:
///   * `.dmat`  — this library's native binary (magic + u64 rows/cols + f64s);
///   * `.fvecs` — the standard ANN-benchmark format (i32 dim + f32s per row),
///                so users can load the paper's public datasets directly;
///   * `.csv`   — comma-separated doubles, one point per line.
/// Loaders return std::nullopt on malformed input instead of aborting, since
/// files are external input rather than programmer error.

/// Write/read the native binary format.
bool WriteDmat(const Matrix& m, const std::string& path);
std::optional<Matrix> ReadDmat(const std::string& path);

/// Read an .fvecs file (float32 rows are widened to double). All rows must
/// share one dimensionality.
std::optional<Matrix> ReadFvecs(const std::string& path);

/// Write a matrix as .fvecs (doubles narrowed to float32).
bool WriteFvecs(const Matrix& m, const std::string& path);

/// Read a headerless CSV of doubles.
std::optional<Matrix> ReadCsv(const std::string& path);

/// Write a headerless CSV of doubles.
bool WriteCsv(const Matrix& m, const std::string& path);

}  // namespace brep

#endif  // BREP_DATASET_IO_H_
