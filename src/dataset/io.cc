#include "dataset/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace brep {
namespace {

constexpr char kDmatMagic[8] = {'B', 'R', 'E', 'P', 'D', 'M', 'A', 'T'};

}  // namespace

bool WriteDmat(const Matrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kDmatMagic, sizeof(kDmatMagic));
  const uint64_t rows = m.rows();
  const uint64_t cols = m.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(m.data().data()),
            static_cast<std::streamsize>(m.data().size() * sizeof(double)));
  return static_cast<bool>(out);
}

std::optional<Matrix> ReadDmat(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kDmatMagic, sizeof(magic)) != 0) {
    return std::nullopt;
  }
  uint64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!in || rows == 0 || cols == 0) return std::nullopt;
  std::vector<double> data(rows * cols);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (!in) return std::nullopt;
  return Matrix(rows, cols, std::move(data));
}

std::optional<Matrix> ReadFvecs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<double> data;
  int32_t dim = -1;
  size_t rows = 0;
  while (true) {
    int32_t row_dim = 0;
    in.read(reinterpret_cast<char*>(&row_dim), sizeof(row_dim));
    if (!in) break;  // clean EOF
    if (row_dim <= 0) return std::nullopt;
    if (dim < 0) dim = row_dim;
    if (row_dim != dim) return std::nullopt;
    std::vector<float> row(static_cast<size_t>(row_dim));
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
    if (!in) return std::nullopt;  // truncated row
    for (float v : row) data.push_back(static_cast<double>(v));
    ++rows;
  }
  if (rows == 0) return std::nullopt;
  return Matrix(rows, static_cast<size_t>(dim), std::move(data));
}

bool WriteFvecs(const Matrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const int32_t dim = static_cast<int32_t>(m.cols());
  std::vector<float> row(m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    const auto src = m.Row(i);
    for (size_t j = 0; j < m.cols(); ++j) row[j] = static_cast<float>(src[j]);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

std::optional<Matrix> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<double> data;
  size_t rows = 0;
  size_t cols = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    size_t row_cols = 0;
    while (std::getline(ss, cell, ',')) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) return std::nullopt;
      data.push_back(v);
      ++row_cols;
    }
    if (rows == 0) {
      cols = row_cols;
    } else if (row_cols != cols) {
      return std::nullopt;  // ragged rows
    }
    ++rows;
  }
  if (rows == 0 || cols == 0) return std::nullopt;
  return Matrix(rows, cols, std::move(data));
}

bool WriteCsv(const Matrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  for (size_t i = 0; i < m.rows(); ++i) {
    const auto row = m.Row(i);
    for (size_t j = 0; j < m.cols(); ++j) {
      if (j > 0) out << ',';
      out << row[j];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace brep
