#ifndef BREP_DATASET_SYNTHETIC_H_
#define BREP_DATASET_SYNTHETIC_H_

#include <cstddef>

#include "common/rng.h"
#include "dataset/matrix.h"

namespace brep {

/// \file
/// Deterministic synthetic workload generators.
///
/// The paper evaluates on four public datasets (Audio, Fonts, Deep, Sift) and
/// two synthetic ones (Normal, Uniform). This offline environment has no
/// network access, so the real datasets are replaced by generators that match
/// the properties the algorithms are sensitive to: dimensionality, clustered
/// structure (BB-trees exploit it), cross-dimension correlation (PCCP
/// exploits it), and domain/scale constraints of the paired divergence
/// (positivity for Itakura-Saito, bounded magnitude for the exponential
/// distance). See DESIGN.md section 3 for the substitution rationale.

/// Parameters for a Gaussian-mixture generator with an optional low-rank
/// factor structure that induces cross-dimension correlations.
struct MixtureSpec {
  size_t n = 1000;
  size_t d = 16;
  size_t num_clusters = 16;
  /// Cluster centers are drawn iid uniform in [center_lo, center_hi]^d.
  double center_lo = -2.0;
  double center_hi = 2.0;
  /// Isotropic within-cluster noise.
  double cluster_std = 0.5;
  /// If > 0, each cluster adds a rank-`latent_factors` component
  /// L * z (L fixed per cluster, z ~ N(0, I)), correlating dimensions.
  size_t latent_factors = 0;
  double factor_scale = 0.7;
  /// If true, the sample x is mapped through s * exp(x) so every coordinate
  /// is strictly positive (log-normal mixture) -- the Itakura-Saito domain.
  bool positive = false;
  double positive_scale = 1.0;
  /// If true, negative coordinates are clamped to 0 after sampling
  /// (SIFT-style non-negative histograms). Ignored when `positive` is set.
  bool clamp_nonnegative = false;
};

/// Sample a mixture dataset. Deterministic given the Rng state.
Matrix MakeMixture(Rng& rng, const MixtureSpec& spec);

/// Parameters of the energy-profile generator, the model behind the
/// real-dataset stand-ins.
///
/// Multimedia features (spectral frames, gradient histograms, glyph pixel
/// statistics) share three traits the BrePartition machinery is sensitive
/// to: a per-point global energy scale, banks of strongly correlated
/// dimensions (filter responses), and cluster structure. The generator
/// models, in log space,
///
///   x_ij = level_i + log profile_{c(i), g(j)} + eta_ig + eps_ij
///
/// with `level_i` the point's energy, `c(i)` its cluster, `g(j)` the
/// dimension's latent group, and small group/dimension noises. `log_domain`
/// false exponentiates (strictly positive energies, the Itakura-Saito
/// pairing); true keeps log-energies (the exponential-distance pairing).
///
/// Comparable per-point coordinate magnitudes are what make the paper's
/// Cauchy-Schwarz bound tight (its equality condition), and the group
/// structure is the correlation signal PCCP spreads across subspaces.
struct EnergyProfileSpec {
  size_t n = 1000;
  size_t d = 64;
  size_t num_clusters = 25;
  size_t num_groups = 8;
  double level_mean = 1.0;
  double level_std = 0.5;
  /// Per-cluster, per-group multiplicative profile range.
  double profile_lo = 0.8;
  double profile_hi = 1.25;
  double group_noise = 0.06;
  double dim_noise = 0.04;
  bool log_domain = false;
};

/// Sample an energy-profile dataset. Deterministic given the Rng state.
Matrix MakeEnergyProfile(Rng& rng, const EnergyProfileSpec& spec);

/// iid N(mean, stddev^2) entries: the paper's "Normal" synthetic dataset
/// (200 dims, standard normal, exponential distance).
Matrix MakeIidNormal(Rng& rng, size_t n, size_t d, double mean = 0.0,
                     double stddev = 1.0);

/// iid Uniform[lo, hi) entries: the paper's "Uniform" synthetic dataset.
/// The paper pairs it with Itakura-Saito, so callers should keep lo > 0.
Matrix MakeIidUniform(Rng& rng, size_t n, size_t d, double lo, double hi);

/// Stand-ins for the paper's real datasets (Table 4), at caller-chosen n.
/// Dimensions default to the paper's: Audio 192, Fonts 400, Deep 256,
/// Sift 128. All are scaled so the paired divergence is numerically safe.
Matrix MakeAudioLike(Rng& rng, size_t n, size_t d = 192);
Matrix MakeFontsLike(Rng& rng, size_t n, size_t d = 400);
Matrix MakeDeepLike(Rng& rng, size_t n, size_t d = 256);
Matrix MakeSiftLike(Rng& rng, size_t n, size_t d = 128);

/// Build a query workload of `count` points: random data rows perturbed by
/// Gaussian noise of `noise_std` times each dimension's stddev. When the
/// dataset is positive, queries are clamped to stay in the positive domain.
Matrix MakeQueries(Rng& rng, const Matrix& data, size_t count,
                   double noise_std = 0.05, bool keep_positive = false);

}  // namespace brep

#endif  // BREP_DATASET_SYNTHETIC_H_
