#include "dataset/matrix.h"

#include "common/check.h"

namespace brep {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  BREP_CHECK(data_.size() == rows_ * cols_);
}

std::vector<double> Matrix::Column(size_t j) const {
  BREP_CHECK(j < cols_);
  std::vector<double> out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = At(i, j);
  return out;
}

Matrix Matrix::GatherColumns(std::span<const size_t> column_indices) const {
  Matrix out(rows_, column_indices.size());
  for (size_t i = 0; i < rows_; ++i) {
    const auto src = Row(i);
    auto dst = out.MutableRow(i);
    for (size_t c = 0; c < column_indices.size(); ++c) {
      BREP_DCHECK(column_indices[c] < cols_);
      dst[c] = src[column_indices[c]];
    }
  }
  return out;
}

Matrix Matrix::GatherRows(std::span<const size_t> row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    BREP_DCHECK(row_indices[i] < rows_);
    const auto src = Row(row_indices[i]);
    auto dst = out.MutableRow(i);
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

Matrix Matrix::Truncated(size_t new_rows) const {
  BREP_CHECK(new_rows <= rows_);
  std::vector<double> data(data_.begin(),
                           data_.begin() + static_cast<ptrdiff_t>(new_rows * cols_));
  return Matrix(new_rows, cols_, std::move(data));
}

}  // namespace brep
