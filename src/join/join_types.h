#ifndef BREP_JOIN_JOIN_TYPES_H_
#define BREP_JOIN_JOIN_TYPES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/top_k.h"

/// \file
/// The kNN-join vocabulary shared by the facade (SearchIndex::KnnJoin) and
/// the dual-tree core (join/dual_tree.h): per-join options, work counters,
/// and the result container. Kept free of api/ dependencies so src/join can
/// be used standalone over raw matrices.

namespace brep {

/// Per-call knobs for SearchIndex::KnnJoin.
struct JoinOptions {
  /// Fraction of the indexed set S the join runs against. 1 (the default)
  /// is the exact join; a rate in (0, 1) joins against a deterministic
  /// seeded sample of S -- the approximate arm for recall/speed trading.
  /// The sampled subset must still hold at least k points
  /// (kInvalidArgument otherwise). Backends without a native join path
  /// only serve the exact arm (kUnimplemented for rates below 1).
  double sample_rate = 1.0;
  /// Seed selecting the sampled subset (sample_rate < 1 only). The same
  /// (rate, seed, S) always joins against the same subset.
  uint64_t sample_seed = 42;
  /// Measure the sampled arm's recall against the exact join (runs the
  /// exact join alongside; costs roughly 2x). The mean per-R-point recall
  /// lands in JoinStats::sampled_recall and the brep_join_sample_recall
  /// gauge. Ignored for exact joins.
  bool measure_recall = false;
  /// Leaf capacity of the transient join trees (R always; S when the
  /// backend builds a transient S tree).
  size_t max_leaf_size = 64;
  /// Target number of independent R-subtree tasks the descent is split
  /// into. The decomposition depends only on the R tree (never on the
  /// thread count), which is what makes parallel results byte-identical
  /// to sequential ones.
  size_t max_tasks = 64;
};

/// Work counters for one join call. The dual-tree counters are the
/// acceptance instrument: node_pairs_visited under the dual-tree descent
/// versus the same dataset's N-single-queries node visits is the measured
/// amortization win.
struct JoinStats {
  /// (R-node, S-node) pairs the dual-tree descent expanded (every pair a
  /// bound was computed for).
  uint64_t node_pairs_visited = 0;
  /// Pairs cut by the pair lower bound exceeding every R-point's current
  /// k-th distance in the R subtree.
  uint64_t node_pairs_pruned = 0;
  /// Leaf-vs-leaf blocks routed through the batched DivergenceScan kernel.
  uint64_t leaf_blocks = 0;
  /// Exact (r, s) divergence evaluations inside leaf blocks.
  uint64_t pairs_evaluated = 0;
  /// Transient tree shapes (diagnostic).
  uint64_t r_tree_nodes = 0;
  uint64_t s_tree_nodes = 0;
  /// Span breakdown, milliseconds.
  double build_ms = 0.0;    // transient tree construction
  double descent_ms = 0.0;  // dual-tree descent + leaf scans
  /// Mean per-R-point recall of the sampled arm against the exact join
  /// (JoinOptions::measure_recall); -1 when not measured.
  double sampled_recall = -1.0;
};

/// One kNN-join answer: neighbors[i] is the sorted (distance, id) top-k of
/// R's row i against the indexed set S.
struct JoinResult {
  std::vector<std::vector<Neighbor>> neighbors;
  JoinStats stats;
};

/// Number of S points a sampled join with `rate` retains out of `n`
/// (deterministic; at least 1). Rate 1 keeps everything.
inline size_t SampledJoinCount(double rate, size_t n) {
  if (rate >= 1.0) return n;
  const size_t m = static_cast<size_t>(rate * static_cast<double>(n));
  return m > 0 ? m : 1;
}

/// Mean per-R-row recall of a sampled join against the exact one (both
/// per-row sorted (distance, id) lists; the exact lists are the truth
/// sets). Feeds JoinStats::sampled_recall and the brep_join_sample_recall
/// gauge.
inline double MeanJoinRecall(
    const std::vector<std::vector<Neighbor>>& sampled,
    const std::vector<std::vector<Neighbor>>& exact) {
  if (sampled.empty()) return 0.0;
  double total = 0.0;
  std::vector<uint32_t> truth;
  for (size_t i = 0; i < sampled.size(); ++i) {
    truth.clear();
    for (const Neighbor& nb : exact[i]) truth.push_back(nb.id);
    std::sort(truth.begin(), truth.end());
    size_t hits = 0;
    for (const Neighbor& nb : sampled[i]) {
      hits += std::binary_search(truth.begin(), truth.end(), nb.id) ? 1 : 0;
    }
    total +=
        exact[i].empty() ? 1.0 : double(hits) / double(exact[i].size());
  }
  return total / double(sampled.size());
}

}  // namespace brep

#endif  // BREP_JOIN_JOIN_TYPES_H_
