#include "join/dual_tree.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "bbtree/bbtree.h"
#include "common/check.h"
#include "common/timer.h"
#include "common/top_k.h"
#include "core/join_bound.h"
#include "divergence/kernels.h"

namespace brep {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Coordinate bounding boxes for every node of `tree`, bottom-up.
void ComputeBoxes(const BBTree& tree, int32_t node,
                  std::vector<CoordBox>* boxes) {
  const BBTree::Node& n = tree.nodes()[node];
  if (n.is_leaf()) {
    (*boxes)[node] = BoxOfRows(tree.data(), n.ids);
    return;
  }
  ComputeBoxes(tree, n.left, boxes);
  ComputeBoxes(tree, n.right, boxes);
  (*boxes)[node] = BoxUnion((*boxes)[n.left], (*boxes)[n.right]);
}

/// Splits the R tree into up to `target` disjoint subtree roots covering
/// every R point, by breadth-first frontier expansion. The decomposition
/// depends only on the tree shape -- never on the thread count -- so the
/// per-task work (and with it every counter and result byte) is fixed.
std::vector<int32_t> SubtreeRoots(const BBTree& tree, size_t target) {
  std::deque<int32_t> frontier{tree.root()};
  std::vector<int32_t> roots;
  while (!frontier.empty() && frontier.size() + roots.size() < target) {
    const int32_t node = frontier.front();
    frontier.pop_front();
    const BBTree::Node& n = tree.nodes()[node];
    if (n.is_leaf()) {
      roots.push_back(node);
    } else {
      frontier.push_back(n.left);
      frontier.push_back(n.right);
    }
  }
  roots.insert(roots.end(), frontier.begin(), frontier.end());
  return roots;
}

/// State of one R-subtree descent task. Tasks share the trees, boxes and
/// the result arrays, but only ever touch slots owned by their own R
/// subtree (heaps/scans of its R points, rbound of its nodes), so they run
/// without synchronization and compose deterministically.
struct DescentTask {
  const BBTree& r_tree;
  const BBTree& s_tree;
  const std::vector<CoordBox>& r_box;
  const std::vector<CoordBox>& s_box;
  const Matrix& s_data;
  std::span<const uint32_t> s_ids;
  const BregmanDivergence& div;
  size_t k;
  std::vector<TopK>& heaps;
  std::vector<double>& rbound;
  std::vector<std::unique_ptr<simd::DivergenceScan>>& scans;
  JoinStats stats;

  // Scratch reused across bound evaluations and leaf blocks.
  std::vector<double> cx, cy, dist;

  /// Pair lower bound; counts the pair as visited.
  double PairBound(int32_t s_node, int32_t r_node) {
    ++stats.node_pairs_visited;
    const double box =
        BoxPairLowerBound(div, s_box[s_node], r_box[r_node], cx, cy);
    const double ball = BallPairLowerBound(div, s_tree.nodes()[s_node].ball,
                                           r_tree.nodes()[r_node].ball);
    return std::max(box, ball);
  }

  void LeafBlock(const BBTree::Node& s, const BBTree::Node& r) {
    ++stats.leaf_blocks;
    dist.resize(s.ids.size());
    for (const uint32_t rid : r.ids) {
      std::unique_ptr<simd::DivergenceScan>& scan = scans[rid];
      if (scan == nullptr) {
        scan = std::make_unique<simd::DivergenceScan>(div,
                                                      r_tree.data().Row(rid));
      }
      scan->BatchRows(s_data.data().data(), s_data.cols(), s.ids.data(),
                      s.ids.size(), dist.data());
      TopK& heap = heaps[rid];
      for (size_t i = 0; i < s.ids.size(); ++i) {
        heap.Push(dist[i], s_ids[s.ids[i]]);
      }
    }
    stats.pairs_evaluated += r.ids.size() * s.ids.size();
  }

  void Descend(int32_t s_node, int32_t r_node, double lb) {
    // Strict prune: the bound never exceeds any realizable pair distance
    // (core/join_bound.h), and rbound only ever overestimates the largest
    // live k-th distance under r_node, so lb > rbound can only cut pairs
    // no subtree point can still accept.
    if (lb > rbound[r_node]) {
      ++stats.node_pairs_pruned;
      return;
    }
    const BBTree::Node& s = s_tree.nodes()[s_node];
    const BBTree::Node& r = r_tree.nodes()[r_node];
    if (s.is_leaf() && r.is_leaf()) {
      LeafBlock(s, r);
      double bound = 0.0;
      for (const uint32_t rid : r.ids) {
        bound = std::max(bound, heaps[rid].Threshold());
      }
      rbound[r_node] = bound;
      return;
    }
    // Expand the side with the wider ball (forced when one is a leaf);
    // ties expand S, whose leaves feed the batched scan.
    const bool expand_s =
        !s.is_leaf() &&
        (r.is_leaf() || s.ball.radius >= r.ball.radius);
    if (expand_s) {
      const double lb_left = PairBound(s.left, r_node);
      const double lb_right = PairBound(s.right, r_node);
      // Nearer S child first: resolving close points early tightens the
      // heaps, so the farther child is more likely to prune outright.
      if (lb_left <= lb_right) {
        Descend(s.left, r_node, lb_left);
        Descend(s.right, r_node, lb_right);
      } else {
        Descend(s.right, r_node, lb_right);
        Descend(s.left, r_node, lb_left);
      }
      if (!r.is_leaf()) {
        rbound[r_node] = std::max(rbound[r.left], rbound[r.right]);
      } else {
        double bound = 0.0;
        for (const uint32_t rid : r.ids) {
          bound = std::max(bound, heaps[rid].Threshold());
        }
        rbound[r_node] = bound;
      }
    } else {
      const double lb_left = PairBound(s_node, r.left);
      const double lb_right = PairBound(s_node, r.right);
      Descend(s_node, r.left, lb_left);
      Descend(s_node, r.right, lb_right);
      rbound[r_node] = std::max(rbound[r.left], rbound[r.right]);
    }
  }

  void Run(int32_t r_root) {
    const size_t d = div.dim();
    cx.resize(d);
    cy.resize(d);
    Descend(s_tree.root(), r_root, PairBound(s_tree.root(), r_root));
  }
};

void CheckJoinInputs(const Matrix& r, const Matrix& s,
                     std::span<const uint32_t> s_ids,
                     const BregmanDivergence& div, size_t k) {
  BREP_CHECK(r.rows() > 0 && s.rows() > 0);
  BREP_CHECK(r.cols() == div.dim() && s.cols() == div.dim());
  BREP_CHECK(s_ids.size() == s.rows());
  BREP_CHECK(k >= 1 && k <= s.rows());
}

}  // namespace

JoinResult DualTreeKnnJoin(const Matrix& r, const Matrix& s,
                           std::span<const uint32_t> s_ids,
                           const BregmanDivergence& div, size_t k,
                           const JoinOptions& options, ThreadPool* pool) {
  CheckJoinInputs(r, s, s_ids, div, k);
  JoinResult out;

  Timer build_timer;
  BBTreeConfig config;
  config.max_leaf_size = options.max_leaf_size;
  const BBTree s_tree(s, div, config);
  const BBTree r_tree(r, div, config);
  std::vector<CoordBox> s_box(s_tree.nodes().size());
  std::vector<CoordBox> r_box(r_tree.nodes().size());
  ComputeBoxes(s_tree, s_tree.root(), &s_box);
  ComputeBoxes(r_tree, r_tree.root(), &r_box);
  out.stats.build_ms = build_timer.ElapsedMillis();
  out.stats.r_tree_nodes = r_tree.nodes().size();
  out.stats.s_tree_nodes = s_tree.nodes().size();

  Timer descent_timer;
  const std::vector<int32_t> roots =
      SubtreeRoots(r_tree, std::max<size_t>(1, options.max_tasks));
  std::vector<TopK> heaps(r.rows(), TopK(k));
  std::vector<double> rbound(r_tree.nodes().size(), kInf);
  std::vector<std::unique_ptr<simd::DivergenceScan>> scans(r.rows());
  std::vector<JoinStats> task_stats(roots.size());

  const auto run_task = [&](size_t t) {
    DescentTask task{r_tree, s_tree, r_box,   s_box, s,
                     s_ids,  div,    k,       heaps, rbound,
                     scans,  {},     {},      {},    {}};
    task.Run(roots[t]);
    task_stats[t] = task.stats;
  };
  if (pool != nullptr && roots.size() > 1) {
    pool->ParallelFor(roots.size(),
                      [&](size_t t, size_t /*lane*/) { run_task(t); });
  } else {
    for (size_t t = 0; t < roots.size(); ++t) run_task(t);
  }
  // Summed in task order, so counters match across thread counts.
  for (const JoinStats& ts : task_stats) {
    out.stats.node_pairs_visited += ts.node_pairs_visited;
    out.stats.node_pairs_pruned += ts.node_pairs_pruned;
    out.stats.leaf_blocks += ts.leaf_blocks;
    out.stats.pairs_evaluated += ts.pairs_evaluated;
  }

  out.neighbors.resize(r.rows());
  for (size_t i = 0; i < r.rows(); ++i) {
    out.neighbors[i] = heaps[i].SortedResults();
  }
  out.stats.descent_ms = descent_timer.ElapsedMillis();
  return out;
}

JoinResult SingleTreeKnnJoin(const Matrix& r, const Matrix& s,
                             std::span<const uint32_t> s_ids,
                             const BregmanDivergence& div, size_t k,
                             const JoinOptions& options) {
  CheckJoinInputs(r, s, s_ids, div, k);
  JoinResult out;

  Timer build_timer;
  BBTreeConfig config;
  config.max_leaf_size = options.max_leaf_size;
  const BBTree s_tree(s, div, config);
  out.stats.build_ms = build_timer.ElapsedMillis();
  out.stats.s_tree_nodes = s_tree.nodes().size();

  Timer descent_timer;
  out.neighbors.resize(r.rows());
  for (size_t i = 0; i < r.rows(); ++i) {
    SearchStats ss;
    std::vector<Neighbor> nn = s_tree.KnnSearch(r.Row(i), k, &ss);
    // s_ids is strictly increasing, so the local (distance, id) order --
    // and with it the tie-break -- survives the rewrite.
    for (Neighbor& nb : nn) nb.id = s_ids[nb.id];
    out.neighbors[i] = std::move(nn);
    out.stats.node_pairs_visited += ss.nodes_visited;
    out.stats.leaf_blocks += ss.leaves_visited;
    out.stats.pairs_evaluated += ss.points_evaluated;
  }
  out.stats.descent_ms = descent_timer.ElapsedMillis();
  return out;
}

}  // namespace brep
