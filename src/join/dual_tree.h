#ifndef BREP_JOIN_DUAL_TREE_H_
#define BREP_JOIN_DUAL_TREE_H_

#include <cstdint>
#include <span>

#include "dataset/matrix.h"
#include "divergence/bregman.h"
#include "engine/thread_pool.h"
#include "join/join_types.h"

/// \file
/// The dual-tree kNN-join core: for every row of R, its k nearest rows of S
/// under D(s, r), in one simultaneous descent of two transient BB-trees
/// instead of |R| independent single-query descents.
///
/// The descent recurses over (S-node, R-node) pairs. Every R node carries a
/// prunable bound B(r) -- an upper bound on the largest current k-th
/// distance of any R point in its subtree, tightened bottom-up as leaf
/// blocks resolve -- and a pair is cut when the node-pair lower bound
/// (core/join_bound.h: separable box corners, plus the metric ball-pair
/// bound for squared L2) exceeds B(r): no point under that R node can still
/// accept any point under that S node. Leaf-vs-leaf blocks run through the
/// batched DivergenceScan kernels, so the hot loop is the same SIMD path
/// single-query refinement uses -- and distances are byte-identical to it.
///
/// Parallelism: the R tree is decomposed into a fixed set of subtree tasks
/// (JoinOptions::max_tasks; never a function of the thread count), each a
/// fully sequential descent against the whole S tree writing disjoint
/// result slots. Running them on 1, 2 or 4 threads produces byte-identical
/// neighbors AND counters; the pool only changes wall-clock.

namespace brep {

/// Exact kNN-join of `r` against `s` (preconditions -- checked:
/// 1 <= k <= s.rows(), both matrices over div.dim() columns, s non-empty,
/// s_ids.size() == s.rows()). `s_ids[i]` is the id reported for S row i and
/// must be strictly increasing, so the (distance, id) tie-break matches a
/// scan over the same ids. `pool` parallelizes over R-subtree tasks;
/// nullptr runs them sequentially (same results by construction).
JoinResult DualTreeKnnJoin(const Matrix& r, const Matrix& s,
                           std::span<const uint32_t> s_ids,
                           const BregmanDivergence& div, size_t k,
                           const JoinOptions& options, ThreadPool* pool);

/// The N-single-queries baseline: the same transient S tree, answered once
/// per R row through the classic single-query descent. Byte-identical
/// neighbors to DualTreeKnnJoin; stats.node_pairs_visited holds the summed
/// single-query node visits -- the number the dual-tree descent's pair
/// visits are measured against (tests/join, bench_join).
JoinResult SingleTreeKnnJoin(const Matrix& r, const Matrix& s,
                             std::span<const uint32_t> s_ids,
                             const BregmanDivergence& div, size_t k,
                             const JoinOptions& options);

}  // namespace brep

#endif  // BREP_JOIN_DUAL_TREE_H_
