// The one translation unit compiled with -mavx2 (see CMakeLists: BREP_SIMD).
// Everything here keeps the numerical contract from kernels.h: one point
// per lane, sequential per-dimension accumulation, libm per lane for
// transcendental phi, no FMA contraction -- so every value matches the
// scalar reference bit-for-bit.

#include "divergence/kernels_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdlib>

namespace brep {
namespace simd {
namespace internal {

bool Avx2Compiled() { return true; }

namespace {

// phi over four lanes, for generators whose kVecPhi says phi is plain
// arithmetic (vmulpd is correctly rounded => byte-identical). Generators
// that need libm never reach the lane loops: the entry points below route
// them to the shared unrolled scalar batch instead -- shuttling lanes out
// to libm and back measures slower than the plain loop, and both produce
// the same bits.
inline __m256d PhiVec(const SqL2Fn&, __m256d v) {
  return _mm256_mul_pd(v, v);
}

// One j-step of the divergence sum for four points in `xv`.
template <typename G>
inline __m256d LaneTerm(const ScanCtx& c, const G& g, __m256d xv, size_t j) {
  const __m256d diff = _mm256_sub_pd(xv, _mm256_set1_pd(c.y[j]));
  __m256d term =
      _mm256_sub_pd(_mm256_sub_pd(PhiVec(g, xv), _mm256_set1_pd(c.phi_y[j])),
                    _mm256_mul_pd(_mm256_set1_pd(c.dphi_y[j]), diff));
  if (c.w != nullptr) {
    term = _mm256_mul_pd(_mm256_set1_pd(c.w[j]), term);
  }
  return term;
}

// Lane divergence loop; `load(j, i)` yields coordinate j of points
// i..i+3. The j-loop carries its accumulator, so a single 4-wide
// accumulator runs at vaddpd *latency*, not throughput; the 16-point main
// loop keeps four independent chains in flight (each point's j-order
// stays sequential, so the unroll cannot change any bits). The
// max(0, acc) clamp uses maxpd's src2-on-tie/NaN rule, which matches
// std::max(acc, 0.0) exactly (returns acc for NaN and -0.0).
template <typename G, typename LoadFn>
void BatchLanes(const ScanCtx& c, const G& g, size_t count, double* out,
                LoadFn load) {
  const __m256d vzero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    __m256d acc0 = vzero;
    __m256d acc1 = vzero;
    __m256d acc2 = vzero;
    __m256d acc3 = vzero;
    for (size_t j = 0; j < c.dim; ++j) {
      acc0 = _mm256_add_pd(acc0, LaneTerm(c, g, load(j, i), j));
      acc1 = _mm256_add_pd(acc1, LaneTerm(c, g, load(j, i + 4), j));
      acc2 = _mm256_add_pd(acc2, LaneTerm(c, g, load(j, i + 8), j));
      acc3 = _mm256_add_pd(acc3, LaneTerm(c, g, load(j, i + 12), j));
    }
    _mm256_storeu_pd(out + i, _mm256_max_pd(vzero, acc0));
    _mm256_storeu_pd(out + i + 4, _mm256_max_pd(vzero, acc1));
    _mm256_storeu_pd(out + i + 8, _mm256_max_pd(vzero, acc2));
    _mm256_storeu_pd(out + i + 12, _mm256_max_pd(vzero, acc3));
  }
  for (; i + 4 <= count; i += 4) {
    __m256d acc = vzero;
    for (size_t j = 0; j < c.dim; ++j) {
      acc = _mm256_add_pd(acc, LaneTerm(c, g, load(j, i), j));
    }
    _mm256_storeu_pd(out + i, _mm256_max_pd(vzero, acc));
  }
}

}  // namespace

void Avx2BatchSoA(const ScanCtx& c, const double* xs, size_t count,
                  double* out) {
  WithGenerator(c.info, *c.gen, [&](auto g) {
    if constexpr (decltype(g)::kVecPhi) {
      BatchLanes(c, g, count, out, [&](size_t j, size_t i) {
        return _mm256_loadu_pd(xs + j * count + i);
      });
      for (size_t i = count & ~size_t{3}; i < count; ++i) {
        out[i] = ScanPointStrided(c, g, xs + i, count);
      }
    } else {
      ScalarBatchSoA(c, g, xs, count, out);
    }
    return 0;
  });
}

void Avx2BatchRows(const ScanCtx& c, const double* base, size_t row_stride,
                   const uint32_t* ids, size_t count, double* out) {
  WithGenerator(c.info, *c.gen, [&](auto g) {
    if constexpr (decltype(g)::kVecPhi) {
      BatchLanes(c, g, count, out, [&](size_t j, size_t i) {
        return _mm256_set_pd(base[size_t{ids[i + 3]} * row_stride + j],
                             base[size_t{ids[i + 2]} * row_stride + j],
                             base[size_t{ids[i + 1]} * row_stride + j],
                             base[size_t{ids[i]} * row_stride + j]);
      });
      for (size_t i = count & ~size_t{3}; i < count; ++i) {
        out[i] = ScanPointStrided(c, g, base + size_t{ids[i]} * row_stride, 1);
      }
    } else {
      ScalarBatchRows(c, g, base, row_stride, ids, count, out);
    }
    return 0;
  });
}

void Avx2UBTotalsBlock(const PointTuple* rows, size_t nrows, size_t m,
                       const QueryTriple* q, double* totals, double* ub,
                       size_t ub_stride, size_t first_row) {
  const size_t main = nrows & ~size_t{3};
  for (size_t i = 0; i < main; i += 4) {
    const PointTuple* r0 = rows + i * m;
    const PointTuple* r1 = r0 + m;
    const PointTuple* r2 = r1 + m;
    const PointTuple* r3 = r2 + m;
    __m256d tot = _mm256_setzero_pd();
    for (size_t j = 0; j < m; ++j) {
      const __m256d pa = _mm256_set_pd(r3[j].alpha, r2[j].alpha, r1[j].alpha,
                                       r0[j].alpha);
      const __m256d pg = _mm256_set_pd(r3[j].gamma, r2[j].gamma, r1[j].gamma,
                                       r0[j].gamma);
      // ((p.alpha + q.alpha) + q.beta_yy) + sqrt(p.gamma * q.delta):
      // UBCompute's exact association; vsqrtpd is correctly rounded.
      const __m256d v = _mm256_add_pd(
          _mm256_add_pd(_mm256_add_pd(pa, _mm256_set1_pd(q[j].alpha)),
                        _mm256_set1_pd(q[j].beta_yy)),
          _mm256_sqrt_pd(_mm256_mul_pd(pg, _mm256_set1_pd(q[j].delta))));
      if (ub != nullptr) {
        _mm256_storeu_pd(ub + j * ub_stride + first_row + i, v);
      }
      tot = _mm256_add_pd(tot, v);
    }
    _mm256_storeu_pd(totals + i, tot);
  }
  if (main < nrows) {
    UBTotalsScalarRef(rows + main * m, nrows - main, m, q, totals + main, ub,
                      ub_stride, first_row + main);
  }
}

}  // namespace internal
}  // namespace simd
}  // namespace brep

#else  // !defined(__AVX2__)

#include <cstdlib>

namespace brep {
namespace simd {
namespace internal {

// Built without AVX2 (BREP_SIMD=OFF or a non-x86 target): ActiveBackend()
// sees Avx2Compiled() == false and never dispatches here.

bool Avx2Compiled() { return false; }

void Avx2BatchSoA(const ScanCtx&, const double*, size_t, double*) {
  std::abort();
}
void Avx2BatchRows(const ScanCtx&, const double*, size_t, const uint32_t*,
                   size_t, double*) {
  std::abort();
}
void Avx2UBTotalsBlock(const PointTuple*, size_t, size_t, const QueryTriple*,
                       double*, double*, size_t, size_t) {
  std::abort();
}

}  // namespace internal
}  // namespace simd
}  // namespace brep

#endif  // defined(__AVX2__)
