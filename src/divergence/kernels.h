#ifndef BREP_DIVERGENCE_KERNELS_H_
#define BREP_DIVERGENCE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "divergence/generator.h"

namespace brep {

class BregmanDivergence;
struct PointTuple;
struct QueryTriple;

namespace simd {

/// \file
/// Vectorized divergence and bound kernels: the batched hot-path
/// replacements for the per-element virtual Phi/PhiPrime calls.
///
/// Numerical contract -- the reason every exact-equivalence suite keeps
/// passing byte-identically with SIMD on and off:
///
///  * Single-vector kernels (PhiSum, PairDivergence, GradientInto, ...)
///    evaluate the exact same floating-point expression sequence as the
///    legacy virtual loop; they only devirtualize (one kind switch per
///    call instead of one virtual call per element).
///  * Batched kernels assign one *point per SIMD lane* and keep each
///    point's per-dimension accumulation sequential, so every lane
///    performs the identical elementary-operation sequence the scalar
///    loop would. Add/sub/mul/div/sqrt are correctly rounded, hence
///    lane == scalar bit-for-bit.
///  * Transcendental generators (itakura_saito, exponential, kl, lp_norm)
///    evaluate phi(x_j) through the exact libm calls of the scalar
///    reference, never through a vector polynomial -- the AVX2 backend
///    routes their batches to the shared unrolled scalar loop, which
///    profiles faster than shuttling lanes out to libm -- so their
///    results are also byte-identical (a 0-ULP bound; see
///    tests/divergence/kernels_test.cc, which enforces the bound per
///    backend).
///
/// Dispatch: the backend is resolved once per process from CPUID
/// (AVX2 support), the BREP_SIMD compile option, and the BREP_SIMD
/// environment variable ("off"/"scalar"/"0" force the portable unrolled
/// scalar fallback at runtime).

/// The closed family of scalar generators the kernels specialize for.
/// kGeneric marks an unknown ScalarGenerator subclass: every kernel then
/// falls back to the virtual per-element path (correct, just slower).
enum class GeneratorKind : uint8_t {
  kGeneric,
  kSquaredL2,
  kItakuraSaito,
  kExponential,
  kKL,
  kLpNorm,
};

/// Classify a generator instance (by concrete type) for kernel dispatch.
GeneratorKind ClassifyGenerator(const ScalarGenerator& g);

/// Per-divergence dispatch record, resolved once at BregmanDivergence
/// construction so the hot paths never re-classify.
struct KernelInfo {
  GeneratorKind kind = GeneratorKind::kGeneric;
  double lp_p = 0.0;  // kLpNorm only
};

KernelInfo MakeKernelInfo(const ScalarGenerator& g);

/// Which instruction-set backend the batched kernels run on.
enum class KernelBackend : uint8_t { kScalar = 0, kAvx2 = 1 };

/// The process-wide backend: AVX2 when the build enabled it, the CPU
/// reports it, and the BREP_SIMD environment variable does not force it
/// off; the portable scalar fallback otherwise. Resolved once, then cached.
KernelBackend ActiveBackend();

/// Stable display name ("scalar" / "avx2") for logs, gauges and benches.
const char* BackendName(KernelBackend b);

/// Test/bench hook: force a backend (pass kScalar to measure the fallback
/// on AVX2 hardware). Forcing kAvx2 on a machine without AVX2 support is
/// ignored. Not thread-safe; call before spawning query threads.
void ForceBackendForTest(KernelBackend b);
void ClearBackendOverrideForTest();

// ---------------------------------------------------------------------------
// Single-vector primitives (devirtualized, byte-identical to the legacy
// virtual loops). `w` may be empty (unweighted).

/// sum_j w_j phi(x_j)  (BregmanDivergence::F).
double PhiSum(const KernelInfo& info, const ScalarGenerator& g,
              std::span<const double> x, std::span<const double> w);

/// sum_j w_j (phi(x_j) - phi(y_j) - phi'(y_j) (x_j - y_j)), unclamped
/// (BregmanDivergence::Divergence applies the max(acc, 0) clamp).
double PairDivergence(const KernelInfo& info, const ScalarGenerator& g,
                      std::span<const double> x, std::span<const double> y,
                      std::span<const double> w);

/// out_j = w_j phi'(x_j)  (BregmanDivergence::Gradient).
void GradientInto(const KernelInfo& info, const ScalarGenerator& g,
                  std::span<const double> x, std::span<const double> w,
                  std::span<double> out);

/// out_j = (phi')^{-1}(s_j / w_j)  (BregmanDivergence::GradientInverse).
void GradientInverseInto(const KernelInfo& info, const ScalarGenerator& g,
                         std::span<const double> s, std::span<const double> w,
                         std::span<double> out);

// ---------------------------------------------------------------------------
// Batched multi-point divergence evaluation (the leaf-scan kernel).

/// Query-side context for scanning many points against one query `y`:
/// caches phi(y_j) and phi'(y_j) so a leaf scan pays the query's
/// transcendentals once instead of once per point, then evaluates
/// candidates through the batched backend. Values are byte-identical to
/// BregmanDivergence::Divergence(x, y) for every backend (see the file
/// contract above).
///
/// The context borrows `div` and `y`; both must outlive it (one query's
/// stack scope in practice).
class DivergenceScan {
 public:
  DivergenceScan(const BregmanDivergence& div, std::span<const double> y);

  /// D(x, y) for a single point (clamped at 0 like Divergence).
  double One(std::span<const double> x) const;

  /// D(x_i, y) for `count` points stored column-major (SoA):
  /// xs[j * count + i] is coordinate j of point i. out[count].
  void BatchSoA(const double* xs, size_t count, double* out) const;

  /// D(x_i, y) for rows gathered from a row-major matrix:
  /// point i is base[ids[i] * row_stride .. +dim). out[count].
  void BatchRows(const double* base, size_t row_stride, const uint32_t* ids,
                 size_t count, double* out) const;

  size_t dim() const { return y_.size(); }

 private:
  const ScalarGenerator* gen_;
  KernelInfo info_;
  std::span<const double> y_;
  std::span<const double> w_;          // empty => unweighted
  std::vector<double> phi_y_;          // phi(y_j)
  std::vector<double> dphi_y_;         // phi'(y_j)
};

// ---------------------------------------------------------------------------
// Bound kernels (Cauchy-Schwarz upper-bound machinery).

/// QBDetermine's totals pass over one contiguous block of point-tuple
/// rows: totals[i] = sum_j UBCompute(rows[i*m + j], q[j]) for
/// i in [0, nrows), evaluated in the exact per-point order of the scalar
/// loop (vsqrtpd is correctly rounded, so the AVX2 path is
/// byte-identical). When `ub` is non-null, every per-partition bound is
/// also recorded column-major -- ub[j * ub_stride + (first_row + i)] --
/// so the caller reads the anchor's searching radii back without
/// recomputing them.
void UBTotalsBlock(const PointTuple* rows, size_t nrows, size_t m,
                   const QueryTriple* q, double* totals, double* ub,
                   size_t ub_stride, size_t first_row);

}  // namespace simd
}  // namespace brep

#endif  // BREP_DIVERGENCE_KERNELS_H_
