#ifndef BREP_DIVERGENCE_FACTORY_H_
#define BREP_DIVERGENCE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "divergence/bregman.h"

namespace brep {

/// Create a scalar generator by stable name. Accepted names:
/// "squared_l2" (alias "sq_l2", "euclidean"), "itakura_saito" (alias "isd"),
/// "exponential" (alias "ed"), "kl" (alias "generalized_i"), and
/// "lp:<p>" e.g. "lp:3". Every ScalarGenerator::Name() output is also
/// accepted (e.g. "lp_norm(p=3.000000)"), so a persisted divergence spec
/// round-trips through the factory. Aborts on unknown names (configuration
/// error).
std::shared_ptr<const ScalarGenerator> MakeGenerator(const std::string& name);

/// Like MakeGenerator but returns nullptr on an unknown name -- the
/// persistence open path uses this to reject a corrupted catalog cleanly.
std::shared_ptr<const ScalarGenerator> TryMakeGenerator(
    const std::string& name);

/// Convenience: an unweighted divergence of the named family over `dim`
/// dimensions.
BregmanDivergence MakeDivergence(const std::string& name, size_t dim);

/// The paper's squared Mahalanobis distance with diagonal Q: f(x) =
/// sum_j q_j x_j^2 (all q_j > 0).
BregmanDivergence MakeDiagonalMahalanobis(std::vector<double> q);

}  // namespace brep

#endif  // BREP_DIVERGENCE_FACTORY_H_
