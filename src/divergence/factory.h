#ifndef BREP_DIVERGENCE_FACTORY_H_
#define BREP_DIVERGENCE_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "api/status.h"
#include "divergence/bregman.h"

namespace brep {

/// The names ParseGenerator accepts, with aliases, as one human-readable
/// list -- the tail of every unknown-generator error message.
const std::string& AcceptedGeneratorNames();

/// Create a scalar generator by stable name. Accepted names:
/// "squared_l2" (alias "sq_l2", "euclidean"), "itakura_saito" (alias "isd"),
/// "exponential" (alias "ed"), "kl" (alias "generalized_i"), and
/// "lp:<p>" e.g. "lp:3". Every ScalarGenerator::Name() output is also
/// accepted (e.g. "lp_norm(p=3)", printed with max_digits10 precision so
/// any double p survives), so a persisted divergence spec round-trips
/// through the factory bit-exactly. Unknown names and out-of-range lp
/// parameters yield an InvalidArgument whose message lists the accepted
/// names.
StatusOr<std::shared_ptr<const ScalarGenerator>> ParseGenerator(
    const std::string& name);

/// Like ParseGenerator but aborts on error (configuration error at a
/// call site that has no error channel).
std::shared_ptr<const ScalarGenerator> MakeGenerator(const std::string& name);

/// Like ParseGenerator but returns nullptr on error -- for callers that
/// only need the yes/no (the error detail lives in ParseGenerator).
std::shared_ptr<const ScalarGenerator> TryMakeGenerator(
    const std::string& name);

/// Convenience: an unweighted divergence of the named family over `dim`
/// dimensions.
BregmanDivergence MakeDivergence(const std::string& name, size_t dim);

/// The paper's squared Mahalanobis distance with diagonal Q: f(x) =
/// sum_j q_j x_j^2 (all q_j > 0).
BregmanDivergence MakeDiagonalMahalanobis(std::vector<double> q);

}  // namespace brep

#endif  // BREP_DIVERGENCE_FACTORY_H_
