#ifndef BREP_DIVERGENCE_GENERATORS_H_
#define BREP_DIVERGENCE_GENERATORS_H_

#include <string>

#include "divergence/generator.h"

namespace brep {

/// phi(t) = t^2. Yields the squared Euclidean distance; with per-dimension
/// weights this is the (diagonal) squared Mahalanobis distance of the paper.
class SquaredL2Generator final : public ScalarGenerator {
 public:
  double Phi(double t) const override { return t * t; }
  double PhiPrime(double t) const override { return 2.0 * t; }
  double PhiPrimeInverse(double s) const override { return 0.5 * s; }
  bool InDomain(double) const override { return true; }
  std::string Name() const override { return "squared_l2"; }
};

/// phi(t) = -log t on t > 0. Yields the Itakura-Saito distance
/// D(x, y) = sum_j (x_j / y_j - log(x_j / y_j) - 1), the paper's "ISD".
class ItakuraSaitoGenerator final : public ScalarGenerator {
 public:
  double Phi(double t) const override;
  double PhiPrime(double t) const override { return -1.0 / t; }
  double PhiPrimeInverse(double s) const override { return -1.0 / s; }
  bool InDomain(double t) const override { return t > 0.0; }
  std::string Name() const override { return "itakura_saito"; }
};

/// phi(t) = e^t. Yields the paper's "exponential distance" ("ED"):
/// D(x, y) = sum_j e^{x_j} - (x_j - y_j + 1) e^{y_j}.
class ExponentialGenerator final : public ScalarGenerator {
 public:
  double Phi(double t) const override;
  double PhiPrime(double t) const override;
  double PhiPrimeInverse(double s) const override;
  bool InDomain(double) const override { return true; }
  std::string Name() const override { return "exponential"; }
};

/// phi(t) = t log t - t on t > 0 (Shannon-entropy family). Yields the
/// generalized I-divergence D(x, y) = sum_j x_j log(x_j/y_j) - x_j + y_j,
/// which restricted to the probability simplex is the KL divergence.
///
/// PartitionSafe() is false: the paper excludes KL from the partitioning
/// framework ("it's not cumulative after the dimensionality partitioning"),
/// because on the simplex the dimensions are coupled by the sum-to-one
/// constraint. The generator is still available for whole-space engines
/// (linear scan, BB-tree, VA-file).
class KLGenerator final : public ScalarGenerator {
 public:
  double Phi(double t) const override;
  double PhiPrime(double t) const override;
  double PhiPrimeInverse(double s) const override;
  bool InDomain(double t) const override { return t > 0.0; }
  bool PartitionSafe() const override { return false; }
  std::string Name() const override { return "kl"; }
};

/// phi(t) = |t|^p / p for p > 1 (the paper's lp-norm family member).
/// p = 2 reduces to squared L2 up to a constant factor.
class LpNormGenerator final : public ScalarGenerator {
 public:
  explicit LpNormGenerator(double p);
  double Phi(double t) const override;
  double PhiPrime(double t) const override;
  double PhiPrimeInverse(double s) const override;
  bool InDomain(double) const override { return true; }
  std::string Name() const override;
  double p() const { return p_; }

 private:
  double p_;
};

}  // namespace brep

#endif  // BREP_DIVERGENCE_GENERATORS_H_
