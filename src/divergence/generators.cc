#include "divergence/generators.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"

namespace brep {

double ItakuraSaitoGenerator::Phi(double t) const {
  BREP_DCHECK(t > 0.0);
  return -std::log(t);
}

double ExponentialGenerator::Phi(double t) const { return std::exp(t); }
double ExponentialGenerator::PhiPrime(double t) const { return std::exp(t); }
double ExponentialGenerator::PhiPrimeInverse(double s) const {
  BREP_DCHECK(s > 0.0);
  return std::log(s);
}

double KLGenerator::Phi(double t) const {
  BREP_DCHECK(t > 0.0);
  return t * std::log(t) - t;
}
double KLGenerator::PhiPrime(double t) const {
  BREP_DCHECK(t > 0.0);
  return std::log(t);
}
double KLGenerator::PhiPrimeInverse(double s) const { return std::exp(s); }

LpNormGenerator::LpNormGenerator(double p) : p_(p) {
  BREP_CHECK_MSG(p > 1.0, "lp generator requires p > 1 for strict convexity");
}

double LpNormGenerator::Phi(double t) const {
  return std::pow(std::fabs(t), p_) / p_;
}

double LpNormGenerator::PhiPrime(double t) const {
  const double mag = std::pow(std::fabs(t), p_ - 1.0);
  return t >= 0.0 ? mag : -mag;
}

double LpNormGenerator::PhiPrimeInverse(double s) const {
  const double mag = std::pow(std::fabs(s), 1.0 / (p_ - 1.0));
  return s >= 0.0 ? mag : -mag;
}

std::string LpNormGenerator::Name() const {
  // max_digits10 (%.17g) so the name survives the catalog round-trip
  // (Save -> Open reparses p from the name); std::to_string's fixed six
  // decimals silently snapped p to a nearby value.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "lp_norm(p=%.*g)",
                std::numeric_limits<double>::max_digits10, p_);
  return buf;
}

}  // namespace brep
