#include "divergence/factory.h"

#include <cstdlib>

#include "common/check.h"
#include "divergence/generators.h"

namespace brep {

std::shared_ptr<const ScalarGenerator> MakeGenerator(const std::string& name) {
  if (name == "squared_l2" || name == "sq_l2" || name == "euclidean") {
    return std::make_shared<SquaredL2Generator>();
  }
  if (name == "itakura_saito" || name == "isd") {
    return std::make_shared<ItakuraSaitoGenerator>();
  }
  if (name == "exponential" || name == "ed") {
    return std::make_shared<ExponentialGenerator>();
  }
  if (name == "kl" || name == "generalized_i") {
    return std::make_shared<KLGenerator>();
  }
  if (name.rfind("lp:", 0) == 0) {
    const double p = std::strtod(name.c_str() + 3, nullptr);
    return std::make_shared<LpNormGenerator>(p);
  }
  BREP_CHECK_MSG(false, ("unknown generator: " + name).c_str());
  return nullptr;
}

BregmanDivergence MakeDivergence(const std::string& name, size_t dim) {
  return BregmanDivergence(MakeGenerator(name), dim);
}

BregmanDivergence MakeDiagonalMahalanobis(std::vector<double> q) {
  return BregmanDivergence(std::make_shared<SquaredL2Generator>(),
                           std::move(q));
}

}  // namespace brep
