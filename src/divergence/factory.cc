#include "divergence/factory.h"

#include <cstdlib>

#include "common/check.h"
#include "divergence/generators.h"

namespace brep {

std::shared_ptr<const ScalarGenerator> TryMakeGenerator(
    const std::string& name) {
  if (name == "squared_l2" || name == "sq_l2" || name == "euclidean") {
    return std::make_shared<SquaredL2Generator>();
  }
  if (name == "itakura_saito" || name == "isd") {
    return std::make_shared<ItakuraSaitoGenerator>();
  }
  if (name == "exponential" || name == "ed") {
    return std::make_shared<ExponentialGenerator>();
  }
  if (name == "kl" || name == "generalized_i") {
    return std::make_shared<KLGenerator>();
  }
  if (name.rfind("lp:", 0) == 0) {
    const double p = std::strtod(name.c_str() + 3, nullptr);
    return p > 1.0 ? std::make_shared<LpNormGenerator>(p) : nullptr;
  }
  // LpNormGenerator::Name() form, so persisted specs round-trip.
  if (name.rfind("lp_norm(p=", 0) == 0 && name.back() == ')') {
    const double p = std::strtod(name.c_str() + 10, nullptr);
    return p > 1.0 ? std::make_shared<LpNormGenerator>(p) : nullptr;
  }
  return nullptr;
}

std::shared_ptr<const ScalarGenerator> MakeGenerator(const std::string& name) {
  auto gen = TryMakeGenerator(name);
  if (gen == nullptr && (name.rfind("lp:", 0) == 0 ||
                         name.rfind("lp_norm(p=", 0) == 0)) {
    // The family exists; the parameter is what's wrong.
    BREP_CHECK_MSG(false, "lp generator requires p > 1 (strict convexity)");
  }
  BREP_CHECK_MSG(gen != nullptr, ("unknown generator: " + name).c_str());
  return gen;
}

BregmanDivergence MakeDivergence(const std::string& name, size_t dim) {
  return BregmanDivergence(MakeGenerator(name), dim);
}

BregmanDivergence MakeDiagonalMahalanobis(std::vector<double> q) {
  return BregmanDivergence(std::make_shared<SquaredL2Generator>(),
                           std::move(q));
}

}  // namespace brep
