#include "divergence/factory.h"

#include <cstdlib>

#include "common/check.h"
#include "divergence/generators.h"

namespace brep {

const std::string& AcceptedGeneratorNames() {
  static const std::string kNames =
      "squared_l2 (aliases: sq_l2, euclidean), itakura_saito (alias: isd), "
      "exponential (alias: ed), kl (alias: generalized_i), lp:<p> with p > 1 "
      "(e.g. lp:3)";
  return kNames;
}

StatusOr<std::shared_ptr<const ScalarGenerator>> ParseGenerator(
    const std::string& name) {
  if (name == "squared_l2" || name == "sq_l2" || name == "euclidean") {
    return std::shared_ptr<const ScalarGenerator>(
        std::make_shared<SquaredL2Generator>());
  }
  if (name == "itakura_saito" || name == "isd") {
    return std::shared_ptr<const ScalarGenerator>(
        std::make_shared<ItakuraSaitoGenerator>());
  }
  if (name == "exponential" || name == "ed") {
    return std::shared_ptr<const ScalarGenerator>(
        std::make_shared<ExponentialGenerator>());
  }
  if (name == "kl" || name == "generalized_i") {
    return std::shared_ptr<const ScalarGenerator>(
        std::make_shared<KLGenerator>());
  }
  const bool lp_short = name.rfind("lp:", 0) == 0;
  // LpNormGenerator::Name() form, so persisted specs round-trip.
  const bool lp_long = name.rfind("lp_norm(p=", 0) == 0 && name.back() == ')';
  if (lp_short || lp_long) {
    const double p = std::strtod(name.c_str() + (lp_short ? 3 : 10), nullptr);
    if (!(p > 1.0)) {
      return Status::InvalidArgument(
          "lp generator requires p > 1 (strict convexity), got \"" + name +
          "\"");
    }
    return std::shared_ptr<const ScalarGenerator>(
        std::make_shared<LpNormGenerator>(p));
  }
  return Status::InvalidArgument("unknown generator \"" + name +
                                 "\"; accepted: " + AcceptedGeneratorNames());
}

std::shared_ptr<const ScalarGenerator> MakeGenerator(const std::string& name) {
  auto gen = ParseGenerator(name);
  BREP_CHECK_MSG(gen.ok(), gen.status().message().c_str());
  return *std::move(gen);
}

std::shared_ptr<const ScalarGenerator> TryMakeGenerator(
    const std::string& name) {
  auto gen = ParseGenerator(name);
  return gen.ok() ? *std::move(gen) : nullptr;
}

BregmanDivergence MakeDivergence(const std::string& name, size_t dim) {
  return BregmanDivergence(MakeGenerator(name), dim);
}

BregmanDivergence MakeDiagonalMahalanobis(std::vector<double> q) {
  return BregmanDivergence(std::make_shared<SquaredL2Generator>(),
                           std::move(q));
}

}  // namespace brep
