#include "divergence/kernels.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "divergence/bregman.h"
#include "divergence/generators.h"
#include "divergence/kernels_impl.h"

namespace brep {
namespace simd {

using internal::ScanCtx;
using internal::WithGenerator;

GeneratorKind ClassifyGenerator(const ScalarGenerator& g) {
  if (dynamic_cast<const SquaredL2Generator*>(&g)) {
    return GeneratorKind::kSquaredL2;
  }
  if (dynamic_cast<const ItakuraSaitoGenerator*>(&g)) {
    return GeneratorKind::kItakuraSaito;
  }
  if (dynamic_cast<const ExponentialGenerator*>(&g)) {
    return GeneratorKind::kExponential;
  }
  if (dynamic_cast<const KLGenerator*>(&g)) return GeneratorKind::kKL;
  if (dynamic_cast<const LpNormGenerator*>(&g)) return GeneratorKind::kLpNorm;
  return GeneratorKind::kGeneric;
}

KernelInfo MakeKernelInfo(const ScalarGenerator& g) {
  KernelInfo info;
  info.kind = ClassifyGenerator(g);
  if (info.kind == GeneratorKind::kLpNorm) {
    info.lp_p = static_cast<const LpNormGenerator&>(g).p();
  }
  return info;
}

namespace {

bool Avx2Usable() {
  if (!internal::Avx2Compiled()) return false;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

KernelBackend ResolveBackend() {
  if (!Avx2Usable()) return KernelBackend::kScalar;
  if (const char* env = std::getenv("BREP_SIMD")) {
    std::string v(env);
    for (char& c : v) c = static_cast<char>(std::tolower(c));
    if (v == "off" || v == "0" || v == "scalar" || v == "false" || v == "no") {
      return KernelBackend::kScalar;
    }
  }
  return KernelBackend::kAvx2;
}

// -1 = no override; otherwise the forced KernelBackend value.
std::atomic<int> g_backend_override{-1};

}  // namespace

KernelBackend ActiveBackend() {
  const int forced = g_backend_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelBackend>(forced);
  static const KernelBackend resolved = ResolveBackend();
  return resolved;
}

const char* BackendName(KernelBackend b) {
  return b == KernelBackend::kAvx2 ? "avx2" : "scalar";
}

void ForceBackendForTest(KernelBackend b) {
  if (b == KernelBackend::kAvx2 && !Avx2Usable()) return;
  g_backend_override.store(static_cast<int>(b), std::memory_order_relaxed);
}

void ClearBackendOverrideForTest() {
  g_backend_override.store(-1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Single-vector primitives.

double PhiSum(const KernelInfo& info, const ScalarGenerator& g,
              std::span<const double> x, std::span<const double> w) {
  return WithGenerator(info, g, [&](auto gen) {
    double acc = 0.0;
    if (w.empty()) {
      for (size_t j = 0; j < x.size(); ++j) acc += gen.Phi(x[j]);
    } else {
      for (size_t j = 0; j < x.size(); ++j) acc += w[j] * gen.Phi(x[j]);
    }
    return acc;
  });
}

double PairDivergence(const KernelInfo& info, const ScalarGenerator& g,
                      std::span<const double> x, std::span<const double> y,
                      std::span<const double> w) {
  return WithGenerator(info, g, [&](auto gen) {
    double acc = 0.0;
    if (w.empty()) {
      for (size_t j = 0; j < x.size(); ++j) {
        acc += gen.Phi(x[j]) - gen.Phi(y[j]) -
               gen.PhiPrime(y[j]) * (x[j] - y[j]);
      }
    } else {
      for (size_t j = 0; j < x.size(); ++j) {
        acc += w[j] * (gen.Phi(x[j]) - gen.Phi(y[j]) -
                       gen.PhiPrime(y[j]) * (x[j] - y[j]));
      }
    }
    return acc;
  });
}

void GradientInto(const KernelInfo& info, const ScalarGenerator& g,
                  std::span<const double> x, std::span<const double> w,
                  std::span<double> out) {
  WithGenerator(info, g, [&](auto gen) {
    if (w.empty()) {
      for (size_t j = 0; j < x.size(); ++j) out[j] = gen.PhiPrime(x[j]);
    } else {
      for (size_t j = 0; j < x.size(); ++j) out[j] = w[j] * gen.PhiPrime(x[j]);
    }
    return 0;
  });
}

void GradientInverseInto(const KernelInfo& info, const ScalarGenerator& g,
                         std::span<const double> s, std::span<const double> w,
                         std::span<double> out) {
  WithGenerator(info, g, [&](auto gen) {
    if (w.empty()) {
      for (size_t j = 0; j < s.size(); ++j) out[j] = gen.PhiPrimeInverse(s[j]);
    } else {
      for (size_t j = 0; j < s.size(); ++j) {
        out[j] = gen.PhiPrimeInverse(s[j] / w[j]);
      }
    }
    return 0;
  });
}

// ---------------------------------------------------------------------------
// DivergenceScan.

DivergenceScan::DivergenceScan(const BregmanDivergence& div,
                               std::span<const double> y)
    : gen_(&div.generator()),
      info_(div.kernel_info()),
      y_(y),
      w_(div.weights_span()),
      phi_y_(y.size()),
      dphi_y_(y.size()) {
  BREP_DCHECK(y.size() == div.dim());
  WithGenerator(info_, *gen_, [&](auto gen) {
    for (size_t j = 0; j < y_.size(); ++j) {
      phi_y_[j] = gen.Phi(y_[j]);
      dphi_y_[j] = gen.PhiPrime(y_[j]);
    }
    return 0;
  });
}

namespace {

ScanCtx MakeCtx(const ScalarGenerator* gen, const KernelInfo& info,
                std::span<const double> y, std::span<const double> w,
                const std::vector<double>& phi_y,
                const std::vector<double>& dphi_y) {
  ScanCtx c;
  c.gen = gen;
  c.info = info;
  c.y = y.data();
  c.w = w.empty() ? nullptr : w.data();
  c.phi_y = phi_y.data();
  c.dphi_y = dphi_y.data();
  c.dim = y.size();
  return c;
}

}  // namespace

double DivergenceScan::One(std::span<const double> x) const {
  BREP_DCHECK(x.size() == y_.size());
  const ScanCtx c = MakeCtx(gen_, info_, y_, w_, phi_y_, dphi_y_);
  return WithGenerator(info_, *gen_, [&](auto gen) {
    return internal::ScanPointStrided(c, gen, x.data(), 1);
  });
}

void DivergenceScan::BatchSoA(const double* xs, size_t count,
                              double* out) const {
  if (count == 0) return;
  const ScanCtx c = MakeCtx(gen_, info_, y_, w_, phi_y_, dphi_y_);
  if (ActiveBackend() == KernelBackend::kAvx2) {
    internal::Avx2BatchSoA(c, xs, count, out);
    return;
  }
  WithGenerator(info_, *gen_, [&](auto gen) {
    internal::ScalarBatchSoA(c, gen, xs, count, out);
    return 0;
  });
}

void DivergenceScan::BatchRows(const double* base, size_t row_stride,
                               const uint32_t* ids, size_t count,
                               double* out) const {
  if (count == 0) return;
  const ScanCtx c = MakeCtx(gen_, info_, y_, w_, phi_y_, dphi_y_);
  if (ActiveBackend() == KernelBackend::kAvx2) {
    internal::Avx2BatchRows(c, base, row_stride, ids, count, out);
    return;
  }
  WithGenerator(info_, *gen_, [&](auto gen) {
    internal::ScalarBatchRows(c, gen, base, row_stride, ids, count, out);
    return 0;
  });
}

// ---------------------------------------------------------------------------
// Bound kernels.

void UBTotalsBlock(const PointTuple* rows, size_t nrows, size_t m,
                   const QueryTriple* q, double* totals, double* ub,
                   size_t ub_stride, size_t first_row) {
  if (nrows == 0) return;
  if (ActiveBackend() == KernelBackend::kAvx2) {
    internal::Avx2UBTotalsBlock(rows, nrows, m, q, totals, ub, ub_stride,
                                first_row);
    return;
  }
  internal::UBTotalsScalarRef(rows, nrows, m, q, totals, ub, ub_stride,
                              first_row);
}

}  // namespace simd
}  // namespace brep
