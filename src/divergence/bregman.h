#ifndef BREP_DIVERGENCE_BREGMAN_H_
#define BREP_DIVERGENCE_BREGMAN_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dataset/matrix.h"
#include "divergence/generator.h"
#include "divergence/kernels.h"

namespace brep {

/// The Bregman divergence D_f(x, y) = f(x) - f(y) - <grad f(y), x - y> for a
/// decomposable convex function f(x) = sum_j w_j * phi(x_j).
///
/// Weights default to 1 (plain decomposable generator); supplying weights
/// with the squared-L2 generator gives the paper's squared Mahalanobis
/// distance with a diagonal matrix Q. A general (non-diagonal) Q would couple
/// dimensions and break the partitioning framework, so it is intentionally
/// not representable here (see DESIGN.md section 3).
///
/// Note D_f is *not* symmetric: by the paper's convention the data point is
/// the first argument and the query the second, i.e. kNN minimizes
/// D_f(x, query).
class BregmanDivergence {
 public:
  /// Unweighted divergence over `dim` dimensions.
  BregmanDivergence(std::shared_ptr<const ScalarGenerator> generator,
                    size_t dim);

  /// Weighted divergence; weights.size() defines the dimensionality and all
  /// weights must be strictly positive.
  BregmanDivergence(std::shared_ptr<const ScalarGenerator> generator,
                    std::vector<double> weights);

  size_t dim() const { return dim_; }
  const ScalarGenerator& generator() const { return *generator_; }
  std::shared_ptr<const ScalarGenerator> shared_generator() const {
    return generator_;
  }
  bool weighted() const { return !weights_.empty(); }
  double weight(size_t j) const { return weights_.empty() ? 1.0 : weights_[j]; }

  /// The weight vector as a span; empty means unweighted (all ones).
  std::span<const double> weights_span() const { return weights_; }

  /// Kernel dispatch record for this divergence's generator, resolved once
  /// at construction (see divergence/kernels.h).
  const simd::KernelInfo& kernel_info() const { return kinfo_; }

  /// D_f(x, y). Both spans must have size dim(). Clamped at 0 to absorb
  /// floating-point rounding (mathematically D_f >= 0).
  double Divergence(std::span<const double> x, std::span<const double> y) const;

  /// f(x) = sum_j w_j phi(x_j).
  double F(std::span<const double> x) const;

  /// grad f(x) written into `out` (size dim()).
  void Gradient(std::span<const double> x, std::span<double> out) const;

  /// (grad f)^{-1}(s) written into `out`: the point whose gradient is `s`.
  void GradientInverse(std::span<const double> s, std::span<double> out) const;

  /// True if every coordinate of x lies in the generator's domain.
  bool InDomain(std::span<const double> x) const;

  /// True if every coordinate is in-domain, finite, and phi evaluates to a
  /// finite value on it -- the validation predicate that keeps inf - inf
  /// NaNs out of the search paths (see ScalarGenerator::EvalFinite).
  bool EvalFinite(std::span<const double> x) const;

  /// The right-centroid of a set of points: the minimizer c of
  /// sum_i D_f(x_i, c), which for every Bregman divergence is the plain
  /// arithmetic mean (Banerjee et al. 2005). Rows indexed by `ids`;
  /// empty `ids` means all rows.
  std::vector<double> Mean(const Matrix& points,
                           std::span<const uint32_t> ids) const;

  /// The divergence restricted to a subset of dimensions (a subspace):
  /// shares the generator, gathers the weights. `columns` index into this
  /// divergence's dimensions.
  BregmanDivergence Restrict(std::span<const size_t> columns) const;

  std::string Name() const { return generator_->Name(); }

 private:
  std::shared_ptr<const ScalarGenerator> generator_;
  size_t dim_;
  std::vector<double> weights_;  // empty => all ones
  simd::KernelInfo kinfo_;
};

}  // namespace brep

#endif  // BREP_DIVERGENCE_BREGMAN_H_
