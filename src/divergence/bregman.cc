#include "divergence/bregman.h"

#include <algorithm>

#include "common/check.h"

namespace brep {

BregmanDivergence::BregmanDivergence(
    std::shared_ptr<const ScalarGenerator> generator, size_t dim)
    : generator_(std::move(generator)), dim_(dim) {
  BREP_CHECK(generator_ != nullptr);
  BREP_CHECK(dim_ > 0);
  kinfo_ = simd::MakeKernelInfo(*generator_);
}

BregmanDivergence::BregmanDivergence(
    std::shared_ptr<const ScalarGenerator> generator,
    std::vector<double> weights)
    : generator_(std::move(generator)),
      dim_(weights.size()),
      weights_(std::move(weights)) {
  BREP_CHECK(generator_ != nullptr);
  BREP_CHECK(dim_ > 0);
  for (double w : weights_) BREP_CHECK_MSG(w > 0.0, "weights must be positive");
  kinfo_ = simd::MakeKernelInfo(*generator_);
}

double BregmanDivergence::Divergence(std::span<const double> x,
                                     std::span<const double> y) const {
  BREP_DCHECK(x.size() == dim_ && y.size() == dim_);
  const double acc = simd::PairDivergence(kinfo_, *generator_, x, y, weights_);
  return std::max(acc, 0.0);
}

double BregmanDivergence::F(std::span<const double> x) const {
  BREP_DCHECK(x.size() == dim_);
  return simd::PhiSum(kinfo_, *generator_, x, weights_);
}

void BregmanDivergence::Gradient(std::span<const double> x,
                                 std::span<double> out) const {
  BREP_DCHECK(x.size() == dim_ && out.size() == dim_);
  simd::GradientInto(kinfo_, *generator_, x, weights_, out);
}

void BregmanDivergence::GradientInverse(std::span<const double> s,
                                        std::span<double> out) const {
  BREP_DCHECK(s.size() == dim_ && out.size() == dim_);
  simd::GradientInverseInto(kinfo_, *generator_, s, weights_, out);
}

bool BregmanDivergence::InDomain(std::span<const double> x) const {
  BREP_DCHECK(x.size() == dim_);
  const ScalarGenerator& g = *generator_;
  for (size_t j = 0; j < dim_; ++j) {
    if (!g.InDomain(x[j])) return false;
  }
  return true;
}

bool BregmanDivergence::EvalFinite(std::span<const double> x) const {
  BREP_DCHECK(x.size() == dim_);
  const ScalarGenerator& g = *generator_;
  for (size_t j = 0; j < dim_; ++j) {
    if (!g.EvalFinite(x[j])) return false;
  }
  return true;
}

std::vector<double> BregmanDivergence::Mean(
    const Matrix& points, std::span<const uint32_t> ids) const {
  BREP_CHECK(points.cols() == dim_);
  std::vector<double> mean(dim_, 0.0);
  if (ids.empty()) {
    BREP_CHECK(points.rows() > 0);
    for (size_t i = 0; i < points.rows(); ++i) {
      const auto row = points.Row(i);
      for (size_t j = 0; j < dim_; ++j) mean[j] += row[j];
    }
    for (double& v : mean) v /= static_cast<double>(points.rows());
  } else {
    for (uint32_t id : ids) {
      const auto row = points.Row(id);
      for (size_t j = 0; j < dim_; ++j) mean[j] += row[j];
    }
    for (double& v : mean) v /= static_cast<double>(ids.size());
  }
  return mean;
}

BregmanDivergence BregmanDivergence::Restrict(
    std::span<const size_t> columns) const {
  BREP_CHECK(!columns.empty());
  if (weights_.empty()) {
    return BregmanDivergence(generator_, columns.size());
  }
  std::vector<double> sub;
  sub.reserve(columns.size());
  for (size_t c : columns) {
    BREP_CHECK(c < dim_);
    sub.push_back(weights_[c]);
  }
  return BregmanDivergence(generator_, std::move(sub));
}

}  // namespace brep
