#ifndef BREP_DIVERGENCE_GENERATOR_H_
#define BREP_DIVERGENCE_GENERATOR_H_

#include <cmath>
#include <string>

namespace brep {

/// A strictly convex scalar generator `phi`, applied coordinate-wise to form
/// the decomposable convex function f(x) = sum_j w_j * phi(x_j) that defines
/// a Bregman divergence D_f (see BregmanDivergence).
///
/// BrePartition's dimensionality partitioning requires f to decompose over
/// dimensions; every generator here satisfies that by construction. The
/// inverse derivative is needed by the Bregman-ball theta-projection search
/// (Cayton '08), which walks the dual-space segment between two gradients.
class ScalarGenerator {
 public:
  virtual ~ScalarGenerator() = default;

  /// phi(t). Caller must ensure InDomain(t).
  virtual double Phi(double t) const = 0;

  /// phi'(t), strictly increasing on the domain.
  virtual double PhiPrime(double t) const = 0;

  /// The inverse of phi': returns t with phi'(t) == s. `s` must lie in the
  /// image of phi' over the domain.
  virtual double PhiPrimeInverse(double s) const = 0;

  /// Whether t lies in the (open) domain of phi.
  virtual bool InDomain(double t) const = 0;

  /// True when phi(t) is defined AND evaluates to a finite double -- the
  /// facade's query/insert validation predicate. InDomain alone is not
  /// enough: e.g. exp overflows to +inf past t ~ 709.78, and a +inf phi
  /// value turns Divergence into inf - inf = NaN, which then poisons TopK
  /// ordering (the max(acc, 0) clamp passes NaN through). The default
  /// covers every decomposable generator by evaluating phi once.
  virtual bool EvalFinite(double t) const {
    return InDomain(t) && std::isfinite(t) && std::isfinite(Phi(t));
  }

  /// True when D_f decomposes into a sum of per-partition divergences that
  /// are individually valid Bregman divergences -- the property Theorems 1-3
  /// rely on. KL over the probability simplex is the paper's named exception.
  virtual bool PartitionSafe() const { return true; }

  /// Stable identifier, e.g. "itakura_saito".
  virtual std::string Name() const = 0;
};

}  // namespace brep

#endif  // BREP_DIVERGENCE_GENERATOR_H_
