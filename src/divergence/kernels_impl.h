#ifndef BREP_DIVERGENCE_KERNELS_IMPL_H_
#define BREP_DIVERGENCE_KERNELS_IMPL_H_

// Internal header shared by kernels.cc and kernels_avx2.cc (the only TU
// compiled with -mavx2): inlineable generator functors mirroring the
// ScalarGenerator subclasses expression-for-expression, the kind switch,
// and the scalar reference loops the AVX2 paths fall back to for batch
// tails. Not part of the public kernel API.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/bound.h"
#include "divergence/kernels.h"

namespace brep {
namespace simd {
namespace internal {

// Each functor's bodies must stay textually equivalent to the matching
// ScalarGenerator override in divergence/generators.{h,cc}: that is what
// makes the devirtualized kernels byte-identical to the legacy virtual
// loops. kVecPhi marks phi as safe to evaluate with vector arithmetic
// (add/sub/mul only -- correctly rounded); everything else goes through
// libm per lane.

struct SqL2Fn {
  static constexpr bool kVecPhi = true;
  double Phi(double t) const { return t * t; }
  double PhiPrime(double t) const { return 2.0 * t; }
  double PhiPrimeInverse(double s) const { return 0.5 * s; }
};

struct IsdFn {
  static constexpr bool kVecPhi = false;
  double Phi(double t) const { return -std::log(t); }
  double PhiPrime(double t) const { return -1.0 / t; }
  double PhiPrimeInverse(double s) const { return -1.0 / s; }
};

struct EdFn {
  static constexpr bool kVecPhi = false;
  double Phi(double t) const { return std::exp(t); }
  double PhiPrime(double t) const { return std::exp(t); }
  double PhiPrimeInverse(double s) const { return std::log(s); }
};

struct KlFn {
  static constexpr bool kVecPhi = false;
  double Phi(double t) const { return t * std::log(t) - t; }
  double PhiPrime(double t) const { return std::log(t); }
  double PhiPrimeInverse(double s) const { return std::exp(s); }
};

struct LpFn {
  static constexpr bool kVecPhi = false;
  double p;
  double Phi(double t) const { return std::pow(std::fabs(t), p) / p; }
  double PhiPrime(double t) const {
    const double mag = std::pow(std::fabs(t), p - 1.0);
    return t >= 0.0 ? mag : -mag;
  }
  double PhiPrimeInverse(double s) const {
    const double mag = std::pow(std::fabs(s), 1.0 / (p - 1.0));
    return s >= 0.0 ? mag : -mag;
  }
};

/// Unknown generator subclass: fall back to the virtual calls.
struct VirtFn {
  static constexpr bool kVecPhi = false;
  const ScalarGenerator* g;
  double Phi(double t) const { return g->Phi(t); }
  double PhiPrime(double t) const { return g->PhiPrime(t); }
  double PhiPrimeInverse(double s) const { return g->PhiPrimeInverse(s); }
};

/// One switch per kernel call instead of one virtual call per element.
template <typename Fn>
decltype(auto) WithGenerator(const KernelInfo& info, const ScalarGenerator& g,
                             Fn&& fn) {
  switch (info.kind) {
    case GeneratorKind::kSquaredL2:
      return fn(SqL2Fn{});
    case GeneratorKind::kItakuraSaito:
      return fn(IsdFn{});
    case GeneratorKind::kExponential:
      return fn(EdFn{});
    case GeneratorKind::kKL:
      return fn(KlFn{});
    case GeneratorKind::kLpNorm:
      return fn(LpFn{info.lp_p});
    case GeneratorKind::kGeneric:
      break;
  }
  return fn(VirtFn{&g});
}

/// Query-side scan context handed across the backend boundary (the public
/// DivergenceScan owns the cached arrays and borrows them into this POD).
struct ScanCtx {
  const ScalarGenerator* gen = nullptr;
  KernelInfo info;
  const double* y = nullptr;
  const double* w = nullptr;  // null => unweighted
  const double* phi_y = nullptr;
  const double* dphi_y = nullptr;
  size_t dim = 0;
};

/// Scalar reference for one point whose coordinate j lives at x[j * stride]
/// (stride == 1 for a contiguous row, stride == count for an SoA column).
/// Expression sequence matches BregmanDivergence::Divergence exactly, with
/// phi(y_j)/phi'(y_j) read from the query-side cache.
template <typename G>
inline double ScanPointStrided(const ScanCtx& c, const G& g, const double* x,
                               size_t stride) {
  double acc = 0.0;
  if (c.w == nullptr) {
    for (size_t j = 0; j < c.dim; ++j) {
      const double xv = x[j * stride];
      acc += g.Phi(xv) - c.phi_y[j] - c.dphi_y[j] * (xv - c.y[j]);
    }
  } else {
    for (size_t j = 0; j < c.dim; ++j) {
      const double xv = x[j * stride];
      acc += c.w[j] * (g.Phi(xv) - c.phi_y[j] - c.dphi_y[j] * (xv - c.y[j]));
    }
  }
  return std::max(acc, 0.0);
}

/// Portable batched fallback: four independent accumulators walk four
/// points in lock-step through the SoA columns (each point's j-order stays
/// sequential, so results match the one-point loop bit-for-bit -- the
/// unroll only buys instruction-level parallelism). Shared with the AVX2
/// TU, which routes transcendental generators here: shuttling lanes out to
/// libm and back loses to this plain loop, and the bits are the same.
template <typename G>
inline void ScalarBatchSoA(const ScanCtx& c, const G& g, const double* xs,
                           size_t count, double* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    const double* col = xs + i;
    for (size_t j = 0; j < c.dim; ++j, col += count) {
      const double py = c.phi_y[j];
      const double dpy = c.dphi_y[j];
      const double yj = c.y[j];
      const double x0 = col[0], x1 = col[1], x2 = col[2], x3 = col[3];
      if (c.w == nullptr) {
        a0 += g.Phi(x0) - py - dpy * (x0 - yj);
        a1 += g.Phi(x1) - py - dpy * (x1 - yj);
        a2 += g.Phi(x2) - py - dpy * (x2 - yj);
        a3 += g.Phi(x3) - py - dpy * (x3 - yj);
      } else {
        const double wj = c.w[j];
        a0 += wj * (g.Phi(x0) - py - dpy * (x0 - yj));
        a1 += wj * (g.Phi(x1) - py - dpy * (x1 - yj));
        a2 += wj * (g.Phi(x2) - py - dpy * (x2 - yj));
        a3 += wj * (g.Phi(x3) - py - dpy * (x3 - yj));
      }
    }
    out[i] = std::max(a0, 0.0);
    out[i + 1] = std::max(a1, 0.0);
    out[i + 2] = std::max(a2, 0.0);
    out[i + 3] = std::max(a3, 0.0);
  }
  for (; i < count; ++i) {
    out[i] = ScanPointStrided(c, g, xs + i, count);
  }
}

template <typename G>
inline void ScalarBatchRows(const ScanCtx& c, const G& g, const double* base,
                            size_t row_stride, const uint32_t* ids,
                            size_t count, double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = ScanPointStrided(c, g, base + ids[i] * row_stride, 1);
  }
}

/// Scalar reference for the UB totals pass (also the AVX2 tail): the exact
/// loop QBDetermine ran before the kernel layer existed.
inline void UBTotalsScalarRef(const PointTuple* rows, size_t nrows, size_t m,
                              const QueryTriple* q, double* totals, double* ub,
                              size_t ub_stride, size_t first_row) {
  for (size_t i = 0; i < nrows; ++i) {
    const PointTuple* row = rows + i * m;
    double total = 0.0;
    for (size_t j = 0; j < m; ++j) {
      const double v = UBCompute(row[j], q[j]);
      if (ub != nullptr) ub[j * ub_stride + first_row + i] = v;
      total += v;
    }
    totals[i] = total;
  }
}

// AVX2 entry points, defined in kernels_avx2.cc (the TU carrying -mavx2).
// When that TU is built without AVX2 (BREP_SIMD=OFF or non-x86), they are
// stubs that must never be dispatched to: Avx2Compiled() returns false and
// ActiveBackend() then pins kScalar.
bool Avx2Compiled();
void Avx2BatchSoA(const ScanCtx& ctx, const double* xs, size_t count,
                  double* out);
void Avx2BatchRows(const ScanCtx& ctx, const double* base, size_t row_stride,
                   const uint32_t* ids, size_t count, double* out);
void Avx2UBTotalsBlock(const PointTuple* rows, size_t nrows, size_t m,
                       const QueryTriple* q, double* totals, double* ub,
                       size_t ub_stride, size_t first_row);

}  // namespace internal
}  // namespace simd
}  // namespace brep

#endif  // BREP_DIVERGENCE_KERNELS_IMPL_H_
